package profile

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"
)

// burn spins the CPU for roughly d so a capture window has samples to
// attribute. The sink defeats dead-code elimination.
var burnSink float64

func burn(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0001
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x = math.Sqrt(x*x + 1.0001)
		}
	}
	burnSink = x
}

// captureLabeled takes a real CPU profile while burning cycles under the
// given labels, returning the raw gzipped pprof bytes.
func captureLabeled(t *testing.T, d time.Duration, labels ...string) []byte {
	t.Helper()
	captureMu.Lock()
	defer captureMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) {
		burn(d)
	})
	pprof.StopCPUProfile()
	return buf.Bytes()
}

// TestAnalyzeRealCapture decodes a genuine runtime CPU profile with the
// hand-rolled decoder and checks the labels survive into the attribution.
func TestAnalyzeRealCapture(t *testing.T) {
	raw := captureLabeled(t, 300*time.Millisecond, "tenant", "acme", "phase", "base")
	rep, err := Analyze(raw, 10)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, Schema)
	}
	if rep.Samples == 0 || rep.CPUSeconds <= 0 {
		t.Fatalf("no samples attributed: %+v", rep)
	}
	found := false
	for _, ls := range rep.ByLabel["tenant"] {
		if ls.Value == "acme" && ls.CPUSeconds > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant=acme missing from attribution: %+v", rep.ByLabel)
	}
	if rep.PhaseShares["base"] <= 0 {
		t.Fatalf("phase=base share missing: %+v", rep.PhaseShares)
	}
	if rep.KernelShare <= 0 {
		t.Fatalf("kernel share should reflect phase=base samples: %+v", rep)
	}
	if len(rep.Top) == 0 || len(rep.Top) > 10 {
		t.Fatalf("top table has %d entries, want 1..10", len(rep.Top))
	}
	var text bytes.Buffer
	rep.WriteText(&text)
	if !strings.Contains(text.String(), "by tenant:") || !strings.Contains(text.String(), "acme") {
		t.Fatalf("text render missing tenant breakdown:\n%s", text.String())
	}
}

// TestAnalyzeHeapProfile runs the decoder over a heap snapshot: a
// different sample-type table exercising the value-column fallback.
func TestAnalyzeHeapProfile(t *testing.T) {
	hp := pprof.Lookup("heap")
	if hp == nil {
		t.Skip("no heap profile")
	}
	var buf bytes.Buffer
	if err := hp.WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeProfile(buf.Bytes()); err != nil {
		t.Fatalf("decode heap profile: %v", err)
	}
}

// TestDecodeRejectsCorruption mirrors internal/wire's exact-read
// discipline: truncation, trailing garbage, hostile declared lengths, and
// out-of-range table indices must all error — never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	raw := captureLabeled(t, 120*time.Millisecond, "tenant", "x")
	if _, err := Analyze(raw, 5); err != nil {
		t.Fatalf("pristine profile rejected: %v", err)
	}

	// Truncations of the gzip stream at every decile.
	for frac := 1; frac < 10; frac++ {
		n := len(raw) * frac / 10
		if _, err := Analyze(raw[:n], 5); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(raw))
		}
	}

	// Corrupt the protobuf inside a valid gzip frame: declared length
	// past the end of the buffer.
	gz := func(b []byte) []byte {
		var out bytes.Buffer
		zw := gzip.NewWriter(&out)
		zw.Write(b)
		zw.Close()
		return out.Bytes()
	}
	hostile := []byte{0x12, 0xff, 0xff, 0xff, 0x7f} // field 2, len-delim, 268M declared
	if _, err := Analyze(gz(hostile), 5); err == nil {
		t.Fatal("hostile declared length decoded cleanly")
	}
	// String index out of range: sample_type referencing string 99.
	badIdx := []byte{0x0a, 0x04, 0x08, 0x63, 0x10, 0x63}
	if _, err := Analyze(gz(badIdx), 5); err == nil {
		t.Fatal("out-of-range string index decoded cleanly")
	}
	// Trailing garbage after a valid message must be consumed or error:
	// an invalid tag byte (field number 0).
	if _, err := Analyze(gz([]byte{0x00}), 5); err == nil {
		t.Fatal("field number 0 decoded cleanly")
	}
	if _, err := Analyze(nil, 5); err == nil {
		t.Fatal("empty input decoded cleanly")
	}
}

// TestRingRetention fills the ring past Retain and checks eviction order
// and the eviction counter.
func TestRingRetention(t *testing.T) {
	var evictions testCounter
	p := New(Config{Retain: 3, Inst: &Instruments{Evictions: &evictions}})
	for i := 0; i < 5; i++ {
		p.push(Capture{Kind: "cpu", At: time.Unix(int64(i), 0)})
	}
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d captures, want 3", len(snap))
	}
	if snap[0].At.Unix() != 2 || snap[2].At.Unix() != 4 {
		t.Fatalf("ring kept wrong window: %v .. %v", snap[0].At, snap[2].At)
	}
	if evictions.v != 2 {
		t.Fatalf("evictions counter = %d, want 2", evictions.v)
	}
}

type testCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *testCounter) Add(d int64) { c.mu.Lock(); c.v += d; c.mu.Unlock() }

// TestConcurrentCaptureWhileServe hammers the handler while the capture
// loop runs, under -race in CI: scrapes must never observe a torn ring.
func TestConcurrentCaptureWhileServe(t *testing.T) {
	p := New(Config{Window: 30 * time.Millisecond, Interval: -1, Retain: 2, HeapEvery: 1})
	p.Start()
	defer p.Stop()
	h := NewHandler(p)

	done := make(chan struct{})
	go func() {
		defer close(done)
		burn(200 * time.Millisecond)
	}()
	deadline := time.Now().Add(400 * time.Millisecond)
	var sawReport bool
	for time.Now().Before(deadline) {
		for _, path := range []string{"/profilez", "/profilez.json", "/profilez?window=last", "/profilez?kind=heap"} {
			req := httptest.NewRequest("GET", path, nil)
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if path == "/profilez.json" {
				var hr handlerReport
				if err := json.Unmarshal(rw.Body.Bytes(), &hr); err != nil {
					t.Fatalf("profilez.json unparseable: %v\n%s", err, rw.Body.String())
				}
				if hr.Report != nil && hr.Report.Schema == Schema {
					sawReport = true
				}
			}
		}
	}
	<-done
	p.Stop()
	if !sawReport {
		// The loop may still be inside its first window on a loaded
		// machine; take one synchronous capture to prove the pipeline.
		if _, err := p.CaptureNow(30 * time.Millisecond); err != nil {
			t.Fatalf("no report observed and CaptureNow failed: %v", err)
		}
	}
}

// TestArmedFlag: capture windows arm the hot-path label gate and disarm
// it when the window closes.
func TestArmedFlag(t *testing.T) {
	if Armed() {
		t.Fatal("armed before any capture")
	}
	p := New(Config{})
	ready := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		if !Armed() {
			t.Error("not armed inside a capture window")
		}
		close(ready)
	}()
	if _, err := p.CaptureNow(80 * time.Millisecond); err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	<-ready
	if Armed() {
		t.Fatal("still armed after the window closed")
	}
}

// TestMerge checks aggregate math: seconds add, shares renormalize.
func TestMerge(t *testing.T) {
	a := &Report{Schema: Schema, Windows: 1, Samples: 10, CPUSeconds: 1, KernelShare: 0.8, WalkerShare: 0.1,
		ByLabel: map[string][]LabelStat{"tenant": {{Value: "a", CPUSeconds: 1, Share: 1}}}}
	b := &Report{Schema: Schema, Windows: 1, Samples: 30, CPUSeconds: 3, KernelShare: 0.4, WalkerShare: 0.3,
		ByLabel: map[string][]LabelStat{"tenant": {{Value: "b", CPUSeconds: 3, Share: 1}}}}
	m := Merge([]*Report{a, nil, b})
	if m.Windows != 2 || m.Samples != 40 || m.CPUSeconds != 4 {
		t.Fatalf("merge totals wrong: %+v", m)
	}
	if math.Abs(m.KernelShare-0.5) > 1e-9 || math.Abs(m.WalkerShare-0.25) > 1e-9 {
		t.Fatalf("merged shares wrong: kernel %v walker %v", m.KernelShare, m.WalkerShare)
	}
	if len(m.ByLabel["tenant"]) != 2 || m.ByLabel["tenant"][0].Value != "b" {
		t.Fatalf("merged tenant breakdown wrong: %+v", m.ByLabel["tenant"])
	}
	if Merge(nil) != nil || Merge([]*Report{nil}) != nil {
		t.Fatal("merge of nothing should be nil")
	}
}

// TestSentinel: flags an injected kernel-share collapse, stays silent on
// noise-level wobble and on reports with too little CPU to judge.
func TestSentinel(t *testing.T) {
	base := &Report{CPUSeconds: 2, KernelShare: 0.80, WalkerShare: 0.10,
		PhaseShares: map[string]float64{"base": 0.80, "walk": 0.10, "checkpoint": 0.02}}
	clean := &Report{CPUSeconds: 2, KernelShare: 0.78, WalkerShare: 0.12,
		PhaseShares: map[string]float64{"base": 0.78, "walk": 0.12, "checkpoint": 0.03}}
	regressed := &Report{CPUSeconds: 2, KernelShare: 0.55, WalkerShare: 0.33,
		PhaseShares: map[string]float64{"base": 0.55, "walk": 0.33, "checkpoint": 0.02}}

	s := Sentinel{}
	if f := s.Compare(base, clean); len(f) != 0 {
		t.Fatalf("sentinel flagged noise-level wobble: %v", f)
	}
	f := s.Compare(base, regressed)
	if len(f) < 2 {
		t.Fatalf("sentinel missed the regression: %v", f)
	}
	metrics := map[string]bool{}
	for _, fd := range f {
		metrics[fd.Metric] = true
	}
	if !metrics["kernel_share"] || !metrics["walker_share"] {
		t.Fatalf("wrong findings: %v", f)
	}
	tiny := &Report{CPUSeconds: 0.01, KernelShare: 0}
	if f := s.Compare(base, tiny); len(f) != 0 {
		t.Fatalf("sentinel judged a report with no CPU: %v", f)
	}
	if f := s.Compare(nil, regressed); len(f) != 0 {
		t.Fatal("sentinel judged nil baseline")
	}
}

// TestHandlerDisabled: a nil profiler yields 404, matching the monitor's
// behaviour for absent subsystems.
func TestHandlerDisabled(t *testing.T) {
	h := NewHandler(nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/profilez", nil))
	if rw.Code != 404 {
		t.Fatalf("disabled handler status = %d, want 404", rw.Code)
	}
}

// TestFromEnv covers the POCHOIR_PROFILE gating grammar.
func TestFromEnv(t *testing.T) {
	for _, off := range []string{"", "0", "false", "off"} {
		t.Setenv("POCHOIR_PROFILE", off)
		if FromEnv() != nil {
			t.Fatalf("POCHOIR_PROFILE=%q should disable", off)
		}
	}
	t.Setenv("POCHOIR_PROFILE", "250ms")
	p := FromEnv()
	if p == nil || p.cfg.Window != 250*time.Millisecond {
		t.Fatalf("POCHOIR_PROFILE=250ms gave %+v", p)
	}
	t.Setenv("POCHOIR_PROFILE", "1")
	if p := FromEnv(); p == nil || p.cfg.Window != 10*time.Second {
		t.Fatal("POCHOIR_PROFILE=1 should enable with defaults")
	}
}
