package profile

// The hot-path regression sentinel: compare two attribution reports and
// flag the shifts that matter for a stencil compiler — the kernel share
// eroding or the walker's decomposition overhead growing. Benchlab fuses
// the verdicts into its warn-only baseline gate, and the profile smoke
// test requires the sentinel to flag an injected shift while staying
// silent across consecutive clean runs.

import "fmt"

// DefaultNoise is the absolute share shift (in fraction-of-CPU points)
// below which the sentinel stays silent. CPU profiles at the default 100Hz
// are sampled, so single-digit-percent wobble between clean runs is
// expected; 7 points clears it with margin while still catching the
// double-digit shifts a regressed hot path produces.
const DefaultNoise = 0.07

// Finding is one flagged hot-path shift.
type Finding struct {
	Metric   string  `json:"metric"` // "kernel_share", "walker_share", or "phase:<name>"
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Delta is Current - Baseline, in share points.
	Delta   float64 `json:"delta"`
	Message string  `json:"message"`
}

func (f Finding) String() string { return f.Message }

// Sentinel compares reports against a noise threshold.
type Sentinel struct {
	// Noise is the absolute share delta that must be exceeded before a
	// shift is flagged. Zero means DefaultNoise.
	Noise float64
}

func (s Sentinel) noise() float64 {
	if s.Noise <= 0 {
		return DefaultNoise
	}
	return s.Noise
}

// Compare flags regressions in cur relative to base: kernel share falling
// or walker overhead rising beyond the noise threshold. Either report
// being nil, or either side holding too little CPU to be meaningful,
// yields no findings — absence of data is not a regression.
func (s Sentinel) Compare(base, cur *Report) []Finding {
	if base == nil || cur == nil {
		return nil
	}
	// Below ~50ms of sampled CPU a single 10ms sample swings shares by
	// >20 points; refuse to judge.
	if base.CPUSeconds < 0.05 || cur.CPUSeconds < 0.05 {
		return nil
	}
	n := s.noise()
	var out []Finding
	if d := cur.KernelShare - base.KernelShare; d < -n {
		out = append(out, Finding{
			Metric:   "kernel_share",
			Baseline: base.KernelShare,
			Current:  cur.KernelShare,
			Delta:    d,
			Message: fmt.Sprintf("kernel share fell %.1f points (%.1f%% -> %.1f%%): CPU is leaking out of the base-case kernels",
				-100*d, 100*base.KernelShare, 100*cur.KernelShare),
		})
	}
	if d := cur.WalkerShare - base.WalkerShare; d > n {
		out = append(out, Finding{
			Metric:   "walker_share",
			Baseline: base.WalkerShare,
			Current:  cur.WalkerShare,
			Delta:    d,
			Message: fmt.Sprintf("walker overhead rose %.1f points (%.1f%% -> %.1f%%): decomposition machinery is eating kernel time",
				100*d, 100*base.WalkerShare, 100*cur.WalkerShare),
		})
	}
	if d := cur.PhaseShares["checkpoint"] - base.PhaseShares["checkpoint"]; d > n {
		out = append(out, Finding{
			Metric:   "phase:checkpoint",
			Baseline: base.PhaseShares["checkpoint"],
			Current:  cur.PhaseShares["checkpoint"],
			Delta:    d,
			Message: fmt.Sprintf("checkpoint phase grew %.1f points (%.1f%% -> %.1f%%)",
				100*d, 100*base.PhaseShares["checkpoint"], 100*cur.PhaseShares["checkpoint"]),
		})
	}
	return out
}
