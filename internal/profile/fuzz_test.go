package profile

import (
	"bytes"
	"compress/gzip"
	"context"
	"runtime/pprof"
	"testing"
	"time"
)

// FuzzProfileDecode feeds arbitrary bytes to the pprof decoder. The
// contract matches FuzzWireDecode's: any input either decodes to an
// internally consistent profile or returns an error — never a panic, and
// never an allocation proportional to a hostile declared size rather than
// the input itself (protobuf lengths are validated against the bytes
// actually present, and gzip output is capped). Seeds include a real
// captured runtime CPU profile so the fuzzer starts past the gzip and
// protobuf framing.
func FuzzProfileDecode(f *testing.F) {
	// A real capture, labels and all.
	captureMu.Lock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err == nil {
		pprof.Do(context.Background(), pprof.Labels("tenant", "fuzz", "phase", "base"), func(context.Context) {
			burn(50 * time.Millisecond)
		})
		pprof.StopCPUProfile()
		f.Add(buf.Bytes())
	}
	captureMu.Unlock()

	// A tiny hand-built valid profile, uncompressed and gzipped:
	// one sample type (cpu/nanoseconds), one function, one location,
	// one sample with a label.
	tiny := []byte{
		// string_table: "", "cpu", "nanoseconds", "fn", "k", "v"
		0x32, 0x00,
		0x32, 0x03, 'c', 'p', 'u',
		0x32, 0x0b, 'n', 'a', 'n', 'o', 's', 'e', 'c', 'o', 'n', 'd', 's',
		0x32, 0x02, 'f', 'n',
		0x32, 0x01, 'k',
		0x32, 0x01, 'v',
		// sample_type{type:1 unit:2}
		0x0a, 0x04, 0x08, 0x01, 0x10, 0x02,
		// function{id:1 name:3}
		0x2a, 0x04, 0x08, 0x01, 0x10, 0x03,
		// location{id:1 line{function_id:1}}
		0x22, 0x06, 0x08, 0x01, 0x22, 0x02, 0x08, 0x01,
		// sample{location_id:[1] value:[1000000] label{key:4 str:5}}
		0x12, 0x0e, 0x0a, 0x01, 0x01, 0x12, 0x03, 0xc0, 0x84, 0x3d, 0x1a, 0x04, 0x08, 0x04, 0x10, 0x05,
	}
	f.Add(tiny)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(tiny)
	zw.Close()
	f.Add(gz.Bytes())
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodeProfile(data)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent: every
		// sample's locations resolve (the decoder promises this) and
		// analysis over it must not panic either.
		for _, s := range p.samples {
			for _, loc := range s.locs {
				if _, ok := p.locFuncs[loc]; !ok {
					t.Fatalf("decoded sample references unresolved location %d", loc)
				}
			}
		}
		if _, err := Analyze(data, 10); err != nil {
			// Analyze may legitimately reject (e.g. no sample types);
			// it must only never panic.
			return
		}
	})
}
