package core

// Engine-level failure tests: panic conversion with zoid location, context
// cancellation at the walker layer, and telemetry consistency of aborted
// runs. The public-API behaviours (poisoning, checkpoint/restore) are
// tested in the root package.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pochoir/internal/sched"
	"pochoir/internal/telemetry"
	"pochoir/internal/zoid"
)

// newTestWalker builds a 2D walker over sizes with fine cutoffs and the
// given base function on both clones.
func newTestWalker(sizes []int, serial bool, alg Algorithm, base BaseFunc) *Walker {
	w := &Walker{
		NDims:      len(sizes),
		Algorithm:  alg,
		Serial:     serial,
		TimeCutoff: 2,
		Grain:      1,
	}
	for i, n := range sizes {
		w.Sizes[i] = n
		w.Slopes[i] = 1
		w.Reach[i] = 1
		w.Periodic[i] = true
		w.SpaceCutoff[i] = 8
	}
	w.Boundary = base
	w.Interior = base
	return w
}

func TestRunConvertsKernelPanic(t *testing.T) {
	for _, serial := range []bool{true, false} {
		for _, alg := range []Algorithm{TRAP, STRAP} {
			var calls atomic.Int64
			w := newTestWalker([]int{40, 40}, serial, alg, func(z zoid.Zoid) {
				if calls.Add(1) == 3 {
					panic("third base dies")
				}
			})
			err := w.Run(1, 17)
			var kp *KernelPanicError
			if !errors.As(err, &kp) {
				t.Fatalf("serial=%v alg=%v: got %T %v, want *KernelPanicError", serial, alg, err, err)
			}
			if kp.Value != "third base dies" {
				t.Fatalf("Value = %v", kp.Value)
			}
			if kp.Zoid.N != 2 || !kp.Zoid.WellDefined() {
				t.Fatalf("zoid not captured: %+v", kp.Zoid)
			}
			if len(kp.Stack) == 0 {
				t.Fatal("stack not captured")
			}
		}
	}
}

func TestRunConvertsEnginePanicOutsideBase(t *testing.T) {
	// A panic raised outside any base case (here: simulated via a base
	// that re-raises an already-wrapped scheduler panic) must surface
	// unwrapped rather than double-wrapped.
	pe := &sched.PanicError{Value: "engine"}
	w := newTestWalker([]int{32, 32}, true, TRAP, func(z zoid.Zoid) { panic(pe) })
	err := w.Run(1, 9)
	if !errors.Is(err, error(pe)) {
		t.Fatalf("got %v, want the original *sched.PanicError", err)
	}
}

func TestRunContextCancelStopsPromptly(t *testing.T) {
	for _, serial := range []bool{true, false} {
		var calls atomic.Int64
		release := make(chan struct{})
		w := newTestWalker([]int{64, 64}, serial, TRAP, func(z zoid.Zoid) {
			if calls.Add(1) == 1 {
				close(release) // first base reached: cancel now
			}
			time.Sleep(2 * time.Millisecond)
		})
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-release
			cancel()
		}()
		err := w.RunContext(ctx, 1, 33)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: got %v, want context.Canceled", serial, err)
		}
		// The decomposition has hundreds of base cases; a prompt cancel
		// must have skipped almost all of them.
		if n := calls.Load(); n > 200 {
			t.Fatalf("serial=%v: %d base cases ran after cancellation", serial, n)
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	var calls atomic.Int64
	w := newTestWalker([]int{16, 16}, true, TRAP, func(z zoid.Zoid) { calls.Add(1) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.RunContext(ctx, 1, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("%d base cases ran under a dead context", calls.Load())
	}
}

func TestRunBackgroundContextUnchanged(t *testing.T) {
	// Run must behave exactly as before: complete, nil error.
	var calls atomic.Int64
	w := newTestWalker([]int{24, 24}, false, TRAP, func(z zoid.Zoid) { calls.Add(1) })
	if err := w.Run(1, 9); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("no base cases ran")
	}
}

func TestAbortedRunReleasesTelemetryShards(t *testing.T) {
	rec := telemetry.New()
	var calls atomic.Int64
	w := newTestWalker([]int{48, 48}, false, TRAP, func(z zoid.Zoid) {
		if calls.Add(1) == 5 {
			panic("abort")
		}
	})
	w.Rec = rec
	if err := w.Run(1, 17); err == nil {
		t.Fatal("aborted run returned nil")
	}
	// Every shard was released: a follow-up instrumented run must reuse
	// the pool rather than grow it unboundedly, and Snapshot must see a
	// quiescent recorder.
	st := rec.Snapshot()
	if st.Bases == 0 {
		t.Fatal("aborted run recorded nothing")
	}
	workersAfterAbort := rec.Workers()
	w2 := newTestWalker([]int{48, 48}, false, TRAP, func(z zoid.Zoid) {})
	w2.Rec = rec
	for i := 0; i < 3; i++ {
		if err := w2.Run(1, 17); err != nil {
			t.Fatal(err)
		}
	}
	// Allow ordinary pool growth from scheduling variance, but a leak of
	// one shard per run would exceed this comfortably over three runs.
	if grown := rec.Workers() - workersAfterAbort; grown > rec.Workers()/2+8 {
		t.Fatalf("shard pool grew from %d to %d: leak", workersAfterAbort, rec.Workers())
	}
}
