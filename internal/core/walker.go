// Package core implements the paper's primary contribution: the TRAP
// cache-oblivious parallel stencil algorithm with hyperspace cuts (§3),
// together with the STRAP baseline (Frigo–Strumpen-style serial space cuts)
// used for the Fig. 9/10 comparisons, base-case coarsening (§4), the
// interior/boundary code-clone dispatch (§4), and the unified
// periodic/nonperiodic scheme via virtual coordinates (§4).
//
// The engine is purely geometric: it decomposes space-time into zoids and
// invokes user-supplied base-case functions on them. The stencil-specific
// work — both the generic checked Phase-1 executor and the specialized
// Phase-2 kernels — lives behind the BaseFunc interface, so the same engine
// runs every stencil, every dimensionality, and every boundary regime.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync/atomic"

	"pochoir/internal/faultpoint"
	"pochoir/internal/flight"
	"pochoir/internal/metrics"
	"pochoir/internal/profile"
	"pochoir/internal/sched"
	"pochoir/internal/telemetry"
	"pochoir/internal/zoid"
)

func init() {
	// Feed the always-on flight recorder from the two layers it cannot
	// import directly without hooks: injected faultpoint trips and panics
	// first captured at scheduler sync points. Both record into the
	// process-wide default recorder — the black box is per process, not per
	// run — and both are nil-safe no-ops when POCHOIR_FLIGHT=off.
	faultpoint.SetObserver(func(site faultpoint.Site, depth int) {
		code := int64(0)
		if site == faultpoint.SiteBase {
			code = 1
		}
		flight.Default().Record(flight.EvFault, code, int64(depth), 0)
	})
	sched.SetPanicHook(func(pe *sched.PanicError) {
		if _, ok := pe.Value.(*KernelPanicError); ok {
			return // base() already recorded it with zoid attribution
		}
		flight.Default().Record(flight.EvPanic, 0, 0, flight.PanicSched)
	})
}

// KernelPanicError reports a panic recovered from a base-case kernel. The
// walker converts it (and any other panic reaching Run) into an ordinary
// error return: sibling tasks drain at their fork-join sync points
// (see sched.PanicError) and the process never dies. Value is the original
// panic value, Stack the panicking goroutine's stack, and Zoid the space-time
// trapezoid whose base case was executing — enough to reproduce the failing
// kernel application.
type KernelPanicError struct {
	Value any       // the value passed to panic
	Stack []byte    // stack of the panicking goroutine
	Zoid  zoid.Zoid // the base-case zoid being executed
}

func (e *KernelPanicError) Error() string {
	return fmt.Sprintf("core: kernel panic: %v (zoid t=[%d,%d) lo=%v hi=%v)",
		e.Value, e.Zoid.T0, e.Zoid.T1, e.Zoid.Lo[:e.Zoid.N], e.Zoid.Hi[:e.Zoid.N])
}

// Unwrap exposes a panic value that was itself an error to errors.Is/As.
func (e *KernelPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// BaseFunc executes the base case of the recursion over zoid z: it must
// apply the stencil kernel to every space-time point of z, walking time
// steps in order and letting the spatial bounds advance by the zoid's
// slopes after each step (Fig. 2, lines 20–28).
//
// The interior clone receives only zoids whose kernel applications never
// touch an off-domain or wrapped grid point, so it may use unchecked
// accesses; the boundary clone receives everything else and must reduce
// virtual coordinates modulo the grid size and route off-domain accesses
// through the boundary function.
type BaseFunc func(z zoid.Zoid)

// Algorithm selects the decomposition strategy.
type Algorithm int

const (
	// TRAP cuts as many dimensions as possible simultaneously
	// (hyperspace cuts), processing the 3^k subzoids in k+1 parallel
	// steps (Lemma 1).
	TRAP Algorithm = iota
	// STRAP applies parallel space cuts one dimension at a time, as in
	// Frigo and Strumpen's parallel algorithm, incurring 2 parallel
	// steps per cut dimension.
	STRAP
	// LOOPS executes the computation as a time-serial sequence of
	// chunked full-grid sweeps through the base-case clones — no
	// recursive decomposition and no parallelism. It is the engine of
	// last resort on the resilience degradation ladder: a bug in the
	// recursive decomposition cannot reach it, cancellation is honored
	// between chunks, and kernel panics carry zoid attribution exactly as
	// in the recursive engines.
	LOOPS
)

func (a Algorithm) String() string {
	switch a {
	case TRAP:
		return "TRAP"
	case STRAP:
		return "STRAP"
	case LOOPS:
		return "LOOPS"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Walker runs a trapezoidal-decomposition stencil computation.
type Walker struct {
	NDims    int
	Slopes   [zoid.MaxDims]int  // stencil slopes sigma_i
	Reach    [zoid.MaxDims]int  // max |spatial offset| per dim (interior test)
	Sizes    [zoid.MaxDims]int  // spatial grid extents
	Periodic [zoid.MaxDims]bool // dims wrapped on a torus

	Interior BaseFunc // fast clone; nil falls back to Boundary
	Boundary BaseFunc // checked clone; required

	// Coarsening (§4). A zero TimeCutoff means 1 (recurse to single time
	// steps); zero SpaceCutoff entries mean uncoarsened space cuts.
	TimeCutoff  int
	SpaceCutoff [zoid.MaxDims]int

	// Grain is the minimum approximate zoid volume (height x product of
	// widths) for which subzoids are processed on fresh goroutines.
	// Zero means DefaultGrain. Serial disables parallelism entirely.
	Grain  int64
	Serial bool

	Algorithm Algorithm

	// Rec, when non-nil, records every decomposition decision (cuts,
	// base-case invocations, spawn-vs-inline choices) into per-worker
	// telemetry shards. When nil — the default — every instrumentation
	// point reduces to a single pointer comparison, so uninstrumented
	// runs execute the unmodified hot path.
	Rec *telemetry.Recorder

	// Met, when non-nil, is the live metrics instrument set the walk
	// updates: zoid/cut/base-case counters, point throughput, fork
	// placement, active workers. Unlike telemetry shards, these are
	// shared atomics a monitor scrapes mid-run. Nil — the default — costs
	// one pointer comparison per instrumentation point.
	Met *metrics.RunMetrics

	// Prog, when non-nil, receives every executed base-case volume so the
	// monitor can publish percent-complete and an ETA for the run.
	Prog *metrics.Progress

	// Flight is the black-box flight recorder the walk appends to: run
	// start/end, every cut decision, every base-case entry, cancellation
	// and panic markers. Unlike Rec and Met it is expected to be non-nil —
	// pochoir defaults it to the process-wide flight.Default() — but a nil
	// Flight is safe (Record on nil is a no-op), which is also how
	// POCHOIR_FLIGHT=off disables recording everywhere at once.
	Flight *flight.Recorder

	// engPoints is Met.EnginePoints[Algorithm], resolved once per run so
	// the base case indexes no array on the hot path; metObs is the
	// pre-boxed sched observer, allocated once per run rather than once
	// per fork-join region.
	engPoints *metrics.Counter
	metObs    *metricsObserver

	// cancelled is the per-run cooperative cancellation flag, set by a
	// watcher goroutine when the RunContext context fires. It is nil for
	// non-cancellable runs, so the uncancellable fast path pays one
	// pointer comparison per zoid; cancellable runs pay one atomic load
	// per zoid, amortized over the zoid's whole point set — the walker
	// never checks inside a base case.
	cancelled *atomic.Bool

	// labelCtx carries the run's pprof goroutine labels (phase=walk plus
	// whatever the caller attached: tenant, job, priority, engine). The
	// base case re-labels CPU samples phase=base/boundary against it, but
	// only while a continuous-profiling capture window is armed — when
	// disarmed the per-base-case cost is one atomic load and a pointer
	// comparison. Written once at run start, read-only during the run.
	labelCtx context.Context
}

// DefaultGrain is the spawn threshold used when Walker.Grain is zero.
// Subproblems smaller than this run serially on the current goroutine;
// at ~10^4 points the per-spawn overhead (~1–2 microseconds for a goroutine
// plus WaitGroup) is well under 1% of the base-case work.
const DefaultGrain = 1 << 14

// Validate checks the configuration for obvious errors.
func (w *Walker) Validate() error {
	if w.NDims < 1 || w.NDims > zoid.MaxDims {
		return fmt.Errorf("core: NDims=%d out of range [1,%d]", w.NDims, zoid.MaxDims)
	}
	if w.Boundary == nil {
		return fmt.Errorf("core: Boundary base function is required")
	}
	for i := 0; i < w.NDims; i++ {
		if w.Sizes[i] <= 0 {
			return fmt.Errorf("core: size of dimension %d is %d", i, w.Sizes[i])
		}
		if w.Slopes[i] < 0 {
			return fmt.Errorf("core: negative slope in dimension %d", i)
		}
		if w.Reach[i] < w.Slopes[i] {
			// Reach defaults to slope when unset; a reach below the
			// slope is impossible for a valid shape.
			w.Reach[i] = w.Slopes[i]
		}
	}
	return nil
}

// Run executes the stencil for home times t in [t0, t1) over the full
// spatial grid, decomposing with the configured algorithm. It is
// RunContext with a background context: uncancellable, but still immune to
// kernel panics.
func (w *Walker) Run(t0, t1 int) error {
	return w.RunContext(context.Background(), t0, t1)
}

// RunContext is Run with cooperative cancellation and panic isolation.
//
// Cancellation: when ctx can be cancelled, a watcher goroutine latches an
// atomic flag on ctx.Done() and the recursion checks it once per zoid —
// at cut granularity, never inside a base case — so a cancelled or
// deadlined run returns ctx.Err() within about one base-case duration
// while the fast path stays one atomic load amortized over a whole zoid.
//
// Panic isolation: a panic in a base-case kernel is captured with its
// stack and zoid coordinates and returned as a *KernelPanicError; panics
// elsewhere in the engine return as *sched.PanicError. In both cases
// in-flight sibling tasks drain at their sync points and no goroutine is
// left running when RunContext returns.
//
// Either way the grid is left partially updated; callers that resume must
// restore a consistent state first (pochoir.Stencil does this with
// run-state poisoning and Checkpoint/Restore).
func (w *Walker) RunContext(ctx context.Context, t0, t1 int) (err error) {
	if err := w.Validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if t1 <= t0 {
		return nil
	}
	z := zoid.Box(t0, t1, w.Sizes[:w.NDims])

	// Registered before every other defer so it runs last (LIFO) and sees
	// the final error — after the watcher promoted cancellation and the
	// recover below converted a panic.
	w.Flight.Record(flight.EvRunStart, int64(w.Algorithm), int64(t0), int64(t1))
	defer func() {
		outcome := int64(0)
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			outcome = 2
		default:
			outcome = 1
		}
		w.Flight.Record(flight.EvRunEnd, outcome, 0, 0)
	}()

	w.engPoints, w.metObs = nil, nil
	if m := w.Met; m != nil {
		m.RunsStarted.Inc()
		m.RunsActive.Inc()
		defer m.RunsActive.Dec()
		alg := int(w.Algorithm)
		if alg >= 0 && alg < len(m.EnginePoints) {
			w.engPoints = m.EnginePoints[alg]
		}
		w.metObs = &metricsObserver{m: m}
	}

	if done := ctx.Done(); done != nil {
		var flag atomic.Bool
		w.cancelled = &flag
		stop := make(chan struct{})
		watcher := make(chan struct{})
		go func() {
			defer close(watcher)
			select {
			case <-done:
				flag.Store(true)
				w.Flight.Record(flight.EvCancel, 0, 0, 0)
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watcher
			w.cancelled = nil
			// A cancelled walk returns without its own error; report
			// the context's. A panic error takes precedence: it names
			// the root cause.
			if err == nil && flag.Load() {
				err = ctx.Err()
			}
		}()
	}

	// Registered after the watcher defer and before the telemetry defer,
	// so on a panic the shard is released first (LIFO), then the panic is
	// converted here, then the watcher shuts down.
	defer func() {
		if r := recover(); r != nil {
			err = panicToError(r)
		}
	}()

	// Label the run goroutine phase=walk, merged with whatever labels the
	// caller's context carries (the gateway's tenant/job/priority, the
	// supervisor's engine). Spawned worker goroutines inherit the label
	// set, so every CPU sample of the run self-attributes; the base case
	// overrides phase sample-by-sample while a capture window is armed.
	lctx := pprof.WithLabels(ctx, profile.LabelsWalk)
	pprof.SetGoroutineLabels(lctx)
	w.labelCtx = lctx
	defer func() {
		w.labelCtx = nil
		pprof.SetGoroutineLabels(ctx)
	}()

	if w.Rec == nil {
		w.exec(z, nil)
		return nil
	}
	w.Rec.RunStarted()
	sh := w.Rec.Acquire()
	defer func() {
		// Deferred so failed runs still release the root shard, close
		// its open spans, and balance the wall-time accounting.
		w.Rec.Release(sh)
		w.Rec.RunFinished()
	}()
	w.exec(z, sh)
	return nil
}

// exec dispatches the root zoid to the configured engine.
func (w *Walker) exec(z zoid.Zoid, sh *telemetry.Shard) {
	if w.Algorithm == LOOPS {
		w.runLoops(z, sh)
		return
	}
	w.walk(z, sh, 0)
}

// runLoops is the LOOPS engine: every time step is swept as height-1 zoids
// chunked along dimension 0, each executed through base() — so interior/
// boundary dispatch, panic attribution, telemetry, and the base-site
// faultpoint behave exactly as in the recursive engines. Chunks of one time
// step only read older time slots, so sweeping them in order is correct;
// cancellation is checked once per chunk.
func (w *Walker) runLoops(z zoid.Zoid, sh *telemetry.Shard) {
	chunk := w.SpaceCutoff[0]
	if chunk < 1 {
		chunk = z.Hi[0] - z.Lo[0]
	}
	for t := z.T0; t < z.T1; t++ {
		for lo := z.Lo[0]; lo < z.Hi[0]; lo += chunk {
			if c := w.cancelled; c != nil && c.Load() {
				return
			}
			if m := w.Met; m != nil {
				m.Zoids.Inc()
			}
			step := z
			step.T0, step.T1 = t, t+1
			step.Lo[0] = lo
			if hi := lo + chunk; hi < z.Hi[0] {
				step.Hi[0] = hi
			}
			w.base(step, sh, 0)
		}
	}
}

// PanicToError converts a recovered panic value into the structured error
// the hardened contract promises: *KernelPanicError survives scheduler
// wrapping, anything else becomes a *sched.PanicError. It is exported so
// other engines (the LOOPS baseline driver) convert identically.
func PanicToError(r any) error { return panicToError(r) }

// panicToError converts a panic recovered at the top of a run into the
// error Run returns, unwrapping scheduler wrapping so a kernel panic that
// crossed fork-join sync points still surfaces as *KernelPanicError.
func panicToError(r any) error {
	switch pe := r.(type) {
	case *KernelPanicError:
		return pe
	case *sched.PanicError:
		if kp, ok := pe.Value.(*KernelPanicError); ok {
			return kp
		}
		return pe
	default:
		// A panic outside any base case on the calling goroutine never
		// crossed a sync point, so the scheduler hook did not see it.
		flight.Default().Record(flight.EvPanic, 0, 0, flight.PanicSched)
		return &sched.PanicError{Value: r, Stack: debug.Stack()}
	}
}

// timeCutoff returns the effective base-case height threshold.
func (w *Walker) timeCutoff() int {
	if w.TimeCutoff < 1 {
		return 1
	}
	return w.TimeCutoff
}

// CutSet collects the hyperspace-cut candidates for z: every dimension
// along which a parallel space cut (or, for a still-complete periodic
// dimension, a circle cut) is allowed. It is exported so analytical
// replays of the decomposition (internal/cilkview, internal/cachesim) make
// exactly the decisions the execution engine makes.
func (w *Walker) CutSet(z zoid.Zoid) []zoid.Cut {
	return w.cuttable(z, nil)
}

// TimeCutoffEffective returns the base-case height threshold in effect.
func (w *Walker) TimeCutoffEffective() int { return w.timeCutoff() }

// cuttable collects hyperspace-cut candidates into buf.
func (w *Walker) cuttable(z zoid.Zoid, buf []zoid.Cut) []zoid.Cut {
	buf = buf[:0]
	for i := 0; i < w.NDims; i++ {
		s := w.Slopes[i]
		if w.Periodic[i] && z.IsFullCircle(i, w.Sizes[i]) {
			if z.CanCircleCut(i, s, w.Sizes[i], w.SpaceCutoff[i]) {
				buf = append(buf, zoid.Cut{Dim: i, Slope: s, Kind: zoid.CutCircle, Size: w.Sizes[i]})
			}
			continue
		}
		if z.CanSpaceCut(i, s, w.SpaceCutoff[i]) {
			buf = append(buf, zoid.Cut{Dim: i, Slope: s, Kind: zoid.CutTrisect})
		}
	}
	return buf
}

// approxVolume returns a cheap overestimate of the zoid's point count, used
// only for the spawn-grain decision.
func (w *Walker) approxVolume(z zoid.Zoid) int64 {
	v := int64(z.Height())
	for i := 0; i < w.NDims; i++ {
		wd := z.Width(i)
		if wd <= 0 {
			return 0
		}
		v *= int64(wd)
	}
	return v
}

func (w *Walker) grain() int64 {
	if w.Grain > 0 {
		return w.Grain
	}
	return DefaultGrain
}

// walk recursively decomposes and executes z (Fig. 2). sh is the telemetry
// shard of the current worker goroutine, nil when telemetry is disabled;
// depth is the decomposition depth (root zoid at 0), consumed by the
// cancellation-latency bound and the fault-injection sites.
func (w *Walker) walk(z zoid.Zoid, sh *telemetry.Shard, depth int) {
	// Cooperative cancellation, checked at cut granularity: once per zoid,
	// never inside a base case. Abandoning the zoid here is safe — the
	// run's results are discarded wholesale on cancellation.
	if c := w.cancelled; c != nil && c.Load() {
		return
	}
	if m := w.Met; m != nil {
		m.Zoids.Inc()
	}
	var cutBuf [zoid.MaxDims]zoid.Cut
	cuts := w.cuttable(z, cutBuf[:0])
	if len(cuts) > 0 {
		if faultpoint.Armed() {
			faultpoint.Visit(faultpoint.SiteCut, depth)
		}
		switch w.Algorithm {
		case STRAP:
			w.spaceCutSerialDims(z, cuts[0], sh, depth)
		default:
			w.hyperspaceCut(z, cuts, sh, depth)
		}
		return
	}
	if h := z.Height(); h > w.timeCutoff() {
		if faultpoint.Armed() {
			faultpoint.Visit(faultpoint.SiteCut, depth)
		}
		lower, upper := z.TimeCut()
		if m := w.Met; m != nil {
			m.TimeCuts.Inc()
		}
		w.Flight.Record(flight.EvCut, flight.CutTime, int64(h), 0)
		span := -1
		if sh != nil {
			span = sh.TimeCut(h)
		}
		w.walk(lower, sh, depth+1)
		w.walk(upper, sh, depth+1)
		if sh != nil {
			sh.End(span)
		}
		return
	}
	w.base(z, sh, depth)
}

// hyperspaceCut processes all subzoids level by level, each level in
// parallel (Fig. 2, lines 11–15).
func (w *Walker) hyperspaceCut(z zoid.Zoid, cuts []zoid.Cut, sh *telemetry.Shard, depth int) {
	lv := zoid.HyperspaceCut(z, cuts)
	if m := w.Met; m != nil {
		m.HyperCuts.Inc()
	}
	w.Flight.Record(flight.EvCut, flight.CutHyper, int64(lv.NumCut), int64(lv.Total()))
	span := -1
	if sh != nil {
		span = sh.HyperCut(lv.NumCut, lv.Total(), len(lv.Zoids))
	}
	parallel := !w.Serial && w.approxVolume(z) >= w.grain()
	for _, level := range lv.Zoids {
		w.walkAll(level, parallel, sh, depth+1)
	}
	if sh != nil {
		sh.End(span)
	}
}

// spaceCutSerialDims is the STRAP strategy: cut only along one dimension,
// process its pieces in the 2 parallel steps of Fig. 7, and let the
// recursion discover further cuttable dimensions one at a time.
func (w *Walker) spaceCutSerialDims(z zoid.Zoid, c zoid.Cut, sh *telemetry.Shard, depth int) {
	if m := w.Met; m != nil {
		m.SpaceCuts.Inc()
	}
	cutCode := int64(flight.CutSpace)
	if c.Kind == zoid.CutCircle {
		cutCode = flight.CutCircle
	}
	w.Flight.Record(flight.EvCut, cutCode, int64(c.Dim), 0)
	span := -1
	if sh != nil {
		span = sh.SpaceCut(c.Dim, c.Kind == zoid.CutCircle)
	}
	parallel := !w.Serial && w.approxVolume(z) >= w.grain()
	if c.Kind == zoid.CutCircle {
		sub, _ := z.CircleCut(c.Dim, c.Slope, c.Size)
		w.walkAll(sub[0:2], parallel, sh, depth+1) // blacks
		w.walkAll(sub[2:4], parallel, sh, depth+1) // grays
	} else if sub, upright := z.SpaceCut(c.Dim, c.Slope); upright {
		w.walkAll([]zoid.Zoid{sub[0], sub[2]}, parallel, sh, depth+1)
		w.walk(sub[1], sh, depth+1)
	} else {
		w.walk(sub[1], sh, depth+1)
		w.walkAll([]zoid.Zoid{sub[0], sub[2]}, parallel, sh, depth+1)
	}
	if sh != nil {
		sh.End(span)
	}
}

// walkAll processes a set of mutually independent zoids. Tasks that sched
// runs on the calling goroutine keep the caller's shard; spawned tasks
// acquire their own (see task), which is what gives the trace one track
// per worker.
func (w *Walker) walkAll(zs []zoid.Zoid, parallel bool, sh *telemetry.Shard, depth int) {
	switch len(zs) {
	case 0:
	case 1:
		w.walk(zs[0], sh, depth)
	case 2:
		// Do2 contract: a is spawned, b runs on the calling goroutine.
		sched.Do2Counted(parallel, w.counter(sh),
			w.task(zs[0], parallel, sh, depth),
			func() { w.walk(zs[1], sh, depth) })
	default:
		// DoAll contract: the final function runs on the calling goroutine.
		fns := make([]func(), len(zs))
		for i := range zs {
			zz := zs[i]
			if i == len(zs)-1 {
				fns[i] = func() { w.walk(zz, sh, depth) }
			} else {
				fns[i] = w.task(zz, parallel, sh, depth)
			}
		}
		sched.DoAllCounted(parallel, w.counter(sh), fns)
	}
}

// task wraps a subwalk that the scheduler may run on a fresh goroutine:
// with telemetry enabled it acquires a worker shard for the goroutine's
// lifetime so recording stays contention-free. The release is deferred so
// a panicking subwalk still returns its shard (with any open spans closed)
// before the panic reaches the scheduler's sync point.
func (w *Walker) task(z zoid.Zoid, parallel bool, sh *telemetry.Shard, depth int) func() {
	if m := w.Met; m != nil && parallel {
		m.ForkDepth.Observe(int64(depth))
	}
	if sh == nil || !parallel {
		return func() { w.walk(z, sh, depth) }
	}
	rec := w.Rec
	return func() {
		s2 := rec.Acquire()
		defer rec.Release(s2)
		w.walk(z, s2, depth)
	}
}

// counter adapts the current goroutine's possibly-nil shard, plus the
// run's metrics observer, to sched.Counter without producing a non-nil
// interface holding a nil pointer. With only one system armed the cached
// value is returned directly; only the both-armed case allocates a
// combining adapter, once per fork-join region.
func (w *Walker) counter(sh *telemetry.Shard) sched.Counter {
	if w.metObs == nil {
		if sh == nil {
			return nil
		}
		return sh
	}
	if sh == nil {
		return w.metObs
	}
	return &instr{sh: sh, obs: w.metObs}
}

// metricsObserver feeds the scheduler's decisions into the metrics
// instrument set. It implements sched.WorkerObserver, so spawned goroutines
// also bracket the active-workers gauge; all its updates are atomics, safe
// from any goroutine.
type metricsObserver struct{ m *metrics.RunMetrics }

func (o *metricsObserver) Spawned(n int)   { o.m.Spawns.Add(int64(n)) }
func (o *metricsObserver) Inlined(n int)   { o.m.Inlines.Add(int64(n)) }
func (o *metricsObserver) WorkerStarted()  { o.m.ActiveWorkers.Inc() }
func (o *metricsObserver) WorkerFinished() { o.m.ActiveWorkers.Dec() }

// instr combines the goroutine-private telemetry shard with the shared
// metrics observer when both systems are armed. The shard methods fire only
// on the calling goroutine (the Counter contract); the worker notifications
// go to the metrics side alone, since shards must never be touched from a
// spawned goroutine.
type instr struct {
	sh  *telemetry.Shard
	obs *metricsObserver
}

func (c *instr) Spawned(n int)   { c.sh.Spawned(n); c.obs.Spawned(n) }
func (c *instr) Inlined(n int)   { c.sh.Inlined(n); c.obs.Inlined(n) }
func (c *instr) WorkerStarted()  { c.obs.WorkerStarted() }
func (c *instr) WorkerFinished() { c.obs.WorkerFinished() }

// base dispatches z to the interior or boundary clone (§4, code cloning).
// A panic in the clone — a crashing user kernel — is re-raised as a
// *KernelPanicError carrying the stack and the zoid, so by the time it
// reaches Run's recover the failure is fully located. The recover costs one
// open-coded defer per base case, amortized over the zoid's whole point set.
func (w *Walker) base(z zoid.Zoid, sh *telemetry.Shard, depth int) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case *KernelPanicError, *sched.PanicError:
				panic(r) // already located by a nested region
			}
			w.Flight.Record(flight.EvPanic,
				flight.PackPair(z.T0, z.T1), flight.PackPair(z.Lo[0], z.Hi[0]), flight.PanicBase)
			panic(&KernelPanicError{Value: r, Stack: debug.Stack(), Zoid: z})
		}
	}()
	// The faultpoint fires inside the recover scope: an injected base-site
	// panic surfaces exactly like a crashing kernel, zoid coordinates
	// included.
	if faultpoint.Armed() {
		faultpoint.Visit(faultpoint.SiteBase, depth)
	}
	interior := w.Interior != nil && w.IsInterior(z)
	if fr := w.Flight; fr != nil {
		bit := int64(0)
		if interior {
			bit = 1
		}
		fr.Record(flight.EvBase,
			flight.PackPair(z.T0, z.T1), flight.PackPair(z.Lo[0], z.Hi[0]), z.Volume()<<1|bit)
	}
	if m := w.Met; m != nil {
		// One volume computation and a handful of atomic adds per base
		// case, amortized over the zoid's whole point set.
		vol := z.Volume()
		if interior {
			m.BaseInterior.Inc()
		} else {
			m.BaseBoundary.Inc()
		}
		m.BasePoints.Add(vol)
		m.BaseVolume.Observe(vol)
		if w.engPoints != nil {
			w.engPoints.Add(vol)
		}
	}
	if p := w.Prog; p != nil {
		p.Add(z.Volume())
	}
	// While a continuous-profiling capture window is armed, re-label the
	// kernel invocation phase=base/boundary so CPU samples attribute to
	// the kernels themselves rather than the surrounding walk. Disarmed —
	// the overwhelmingly common case — this is one atomic load.
	if profile.Armed() {
		if lc := w.labelCtx; lc != nil {
			ls := profile.LabelsBoundary
			if interior {
				ls = profile.LabelsBase
			}
			pprof.Do(lc, ls, func(context.Context) {
				w.invokeKernel(z, sh, interior)
			})
			return
		}
	}
	w.invokeKernel(z, sh, interior)
}

// invokeKernel runs the selected clone, bracketed by the telemetry span
// when a shard is attached.
func (w *Walker) invokeKernel(z zoid.Zoid, sh *telemetry.Shard, interior bool) {
	if sh != nil {
		span := sh.Base(z.Volume(), interior, z.Height())
		if interior {
			w.Interior(z)
		} else {
			w.Boundary(z)
		}
		sh.End(span)
		return
	}
	if interior {
		w.Interior(z)
		return
	}
	w.Boundary(z)
}

// IsInterior reports whether every kernel application within z accesses
// only true in-domain grid points, so that the fast interior clone may be
// used: along each dimension the zoid's lifetime extremes, widened by the
// stencil's reach, must stay inside [0, size). Zoids in virtual (wrapped)
// coordinates fail this test and take the boundary clone, which performs
// the modulo reduction — this is what unifies periodic and nonperiodic
// boundary handling (§4).
func (w *Walker) IsInterior(z zoid.Zoid) bool {
	for i := 0; i < w.NDims; i++ {
		minLo, maxHi := z.Extremes(i)
		if minLo-w.Reach[i] < 0 || maxHi+w.Reach[i] > w.Sizes[i] {
			return false
		}
	}
	return true
}
