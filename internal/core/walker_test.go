package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"pochoir/internal/telemetry"
	"pochoir/internal/zoid"
)

// recorder instruments a walker's base case: it marks every executed
// space-time point, verifies exactly-once execution, and — because the
// engine promises that all data dependencies are satisfied before a point
// runs — checks that every neighbor within the stencil slope at t-1 has
// already executed (wrapping when periodic). done flags are atomic so the
// checks are meaningful under parallel execution as well.
type recorder struct {
	t        *testing.T
	nd       int
	sizes    []int
	slope    int
	periodic bool
	t0       int
	steps    int
	done     []atomic.Int32 // (t-t0)*spatial + idx
	fail     atomic.Bool
	mu       sync.Mutex
	firstErr string
}

func newRecorder(t *testing.T, sizes []int, slope int, periodic bool, t0, steps int) *recorder {
	total := 1
	for _, s := range sizes {
		total *= s
	}
	return &recorder{
		t: t, nd: len(sizes), sizes: sizes, slope: slope, periodic: periodic,
		t0: t0, steps: steps, done: make([]atomic.Int32, total*steps),
	}
}

func (r *recorder) spatial(x []int) int {
	off := 0
	for i, v := range x {
		off = off*r.sizes[i] + v
	}
	return off
}

func (r *recorder) report(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr == "" {
		r.firstErr = format
		r.t.Errorf(format, args...)
	}
	r.fail.Store(true)
}

// visit executes the point (t, x true coordinates).
func (r *recorder) visit(t int, x []int) {
	if r.fail.Load() {
		return
	}
	slot := (t-r.t0)*r.total() + r.spatial(x)
	if n := r.done[slot].Add(1); n != 1 {
		r.report("point t=%d x=%v executed %d times", t, x, n)
		return
	}
	if t == r.t0 {
		return // depends only on initial data
	}
	// Check all slope-neighborhood dependencies at t-1.
	nb := make([]int, r.nd)
	var rec func(d int)
	rec = func(d int) {
		if d == r.nd {
			dep := (t-1-r.t0)*r.total() + r.spatial(nb)
			if r.done[dep].Load() == 0 {
				r.report("point t=%d x=%v ran before dependency t=%d x=%v", t, x, t-1, nb)
			}
			return
		}
		for dx := -r.slope; dx <= r.slope; dx++ {
			v := x[d] + dx
			if r.periodic {
				v = ((v % r.sizes[d]) + r.sizes[d]) % r.sizes[d]
			} else if v < 0 || v >= r.sizes[d] {
				continue
			}
			nb[d] = v
			rec(d + 1)
		}
	}
	rec(0)
}

func (r *recorder) total() int {
	total := 1
	for _, s := range r.sizes {
		total *= s
	}
	return total
}

// base returns a BaseFunc that walks the zoid exactly as a kernel executor
// would (time-major, bounds advancing by the slopes) and visits each point
// with true (mod-reduced) coordinates.
func (r *recorder) base() BaseFunc {
	return func(z zoid.Zoid) {
		d := r.nd
		var lo, hi [zoid.MaxDims]int
		for i := 0; i < d; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		x := make([]int, d)
		var rec func(t, dim int)
		rec = func(t, dim int) {
			if dim == d {
				r.visit(t, x)
				return
			}
			for v := lo[dim]; v < hi[dim]; v++ {
				x[dim] = ((v % r.sizes[dim]) + r.sizes[dim]) % r.sizes[dim]
				rec(t, dim+1)
			}
		}
		for t := z.T0; t < z.T1; t++ {
			rec(t, 0)
			for i := 0; i < d; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

func (r *recorder) checkComplete() {
	for i := range r.done {
		if r.done[i].Load() != 1 {
			r.t.Fatalf("slot %d executed %d times (incomplete coverage)", i, r.done[i].Load())
			return
		}
	}
}

func runScenario(t *testing.T, sizes []int, steps, slope int, periodic bool, alg Algorithm, serial bool, timeCut int, spaceCut int) {
	t.Helper()
	r := newRecorder(t, sizes, slope, periodic, 1, steps)
	w := &Walker{
		NDims:      len(sizes),
		Algorithm:  alg,
		Serial:     serial,
		TimeCutoff: timeCut,
		Grain:      1, // spawn aggressively to stress parallel paths
	}
	for i, n := range sizes {
		w.Sizes[i] = n
		w.Slopes[i] = slope
		w.Reach[i] = slope
		w.Periodic[i] = periodic
		w.SpaceCutoff[i] = spaceCut
	}
	w.Boundary = r.base()
	w.Interior = r.base()
	if err := w.Run(1, 1+steps); err != nil {
		t.Fatal(err)
	}
	if !r.fail.Load() {
		r.checkComplete()
	}
}

func TestWalkerCoverageAndOrdering(t *testing.T) {
	type cfg struct {
		name     string
		sizes    []int
		steps    int
		slope    int
		periodic bool
	}
	cfgs := []cfg{
		{"1D", []int{97}, 33, 1, false},
		{"1D periodic", []int{64}, 40, 1, true},
		{"1D slope2", []int{120}, 17, 2, false},
		{"2D", []int{33, 41}, 19, 1, false},
		{"2D periodic", []int{32, 32}, 24, 1, true},
		{"3D", []int{17, 13, 19}, 9, 1, false},
		{"3D periodic", []int{16, 12, 16}, 10, 1, true},
		{"4D", []int{9, 8, 7, 10}, 6, 1, false},
	}
	for _, c := range cfgs {
		for _, alg := range []Algorithm{TRAP, STRAP} {
			for _, serial := range []bool{true, false} {
				name := c.name + "/" + alg.String()
				if serial {
					name += "/serial"
				} else {
					name += "/parallel"
				}
				t.Run(name, func(t *testing.T) {
					runScenario(t, c.sizes, c.steps, c.slope, c.periodic, alg, serial, 1, 0)
				})
			}
		}
	}
}

func TestWalkerCoarsened(t *testing.T) {
	// Coarsening must not affect coverage or ordering.
	runScenario(t, []int{61, 45}, 23, 1, true, TRAP, false, 4, 8)
	runScenario(t, []int{61, 45}, 23, 1, false, TRAP, false, 4, 8)
	runScenario(t, []int{50}, 31, 1, true, STRAP, false, 5, 6)
}

func TestWalkerTinyGrids(t *testing.T) {
	// Grids too small for any space cut must still complete via time cuts
	// and base cases.
	runScenario(t, []int{3}, 9, 1, false, TRAP, true, 1, 0)
	runScenario(t, []int{3, 3}, 7, 1, true, TRAP, false, 1, 0)
	runScenario(t, []int{2, 2, 2}, 5, 1, true, STRAP, true, 1, 0)
}

func TestWalkerZeroSteps(t *testing.T) {
	w := &Walker{NDims: 1}
	w.Sizes[0] = 8
	w.Slopes[0] = 1
	called := false
	w.Boundary = func(z zoid.Zoid) { called = true }
	if err := w.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("no time steps should mean no base calls")
	}
}

func TestWalkerValidate(t *testing.T) {
	w := &Walker{NDims: 0}
	if err := w.Run(0, 1); err == nil {
		t.Fatal("NDims=0 should fail validation")
	}
	w = &Walker{NDims: 1}
	w.Sizes[0] = 8
	if err := w.Run(0, 1); err == nil {
		t.Fatal("missing boundary clone should fail validation")
	}
	w.Boundary = func(z zoid.Zoid) {}
	w.Sizes[0] = -1
	if err := w.Run(0, 1); err == nil {
		t.Fatal("negative size should fail validation")
	}
	w.Sizes[0] = 8
	w.Slopes[0] = -1
	if err := w.Run(0, 1); err == nil {
		t.Fatal("negative slope should fail validation")
	}
}

func TestReachDefaultsToSlope(t *testing.T) {
	w := &Walker{NDims: 1}
	w.Sizes[0] = 8
	w.Slopes[0] = 2
	w.Reach[0] = 0
	w.Boundary = func(z zoid.Zoid) {}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Reach[0] != 2 {
		t.Fatalf("reach = %d, want slope default 2", w.Reach[0])
	}
}

func TestIsInterior(t *testing.T) {
	w := &Walker{NDims: 1}
	w.Sizes[0] = 100
	w.Slopes[0] = 1
	w.Reach[0] = 1
	w.Boundary = func(z zoid.Zoid) {}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	in, _ := zoid.New(0, 4, []int{10}, []int{20}, []int{0}, []int{0})
	if !w.IsInterior(in) {
		t.Fatal("fully inside zoid should be interior")
	}
	edge, _ := zoid.New(0, 4, []int{0}, []int{20}, []int{0}, []int{0})
	if w.IsInterior(edge) {
		t.Fatal("zoid touching x=0 reads x=-1: not interior")
	}
	right, _ := zoid.New(0, 4, []int{90}, []int{100}, []int{0}, []int{0})
	if w.IsInterior(right) {
		t.Fatal("zoid touching x=N reads x=N: not interior")
	}
	virt, _ := zoid.New(0, 2, []int{98}, []int{104}, []int{0}, []int{0})
	if w.IsInterior(virt) {
		t.Fatal("virtual-coordinate zoid must take the boundary clone")
	}
	// Reach larger than slope shrinks the interior region.
	w.Reach[0] = 3
	in2, _ := zoid.New(0, 4, []int{2}, []int{20}, []int{0}, []int{0})
	if w.IsInterior(in2) {
		t.Fatal("lo=2 with reach 3 reads x=-1: not interior")
	}
}

// TestInteriorOnlyForTrueInterior runs a full walk where the interior clone
// asserts that no access could leave the domain — guarding the code-clone
// dispatch itself.
func TestInteriorCloneNeverNeedsBoundary(t *testing.T) {
	sizes := []int{40, 40}
	steps := 20
	w := &Walker{NDims: 2, Grain: 1}
	for i, n := range sizes {
		w.Sizes[i] = n
		w.Slopes[i] = 1
		w.Reach[i] = 1
		w.Periodic[i] = true
	}
	var interiorPts, boundaryPts atomic.Int64
	count := func(z zoid.Zoid, interior bool) {
		for i := 0; i < 2; i++ {
			minLo, maxHi := z.Extremes(i)
			if interior && (minLo < 1 || maxHi > sizes[i]-1) {
				t.Errorf("interior clone got edge-touching zoid %v", z)
			}
		}
		if interior {
			interiorPts.Add(z.Volume())
		} else {
			boundaryPts.Add(z.Volume())
		}
	}
	w.Interior = func(z zoid.Zoid) { count(z, true) }
	w.Boundary = func(z zoid.Zoid) { count(z, false) }
	if err := w.Run(1, 1+steps); err != nil {
		t.Fatal(err)
	}
	total := interiorPts.Load() + boundaryPts.Load()
	want := int64(sizes[0]) * int64(sizes[1]) * int64(steps)
	if total != want {
		t.Fatalf("points processed %d, want %d", total, want)
	}
	if interiorPts.Load() == 0 {
		t.Fatal("expected some interior zoids on a 40x40 grid")
	}
}

// TestWalkerTelemetry runs instrumented walks across algorithms and
// serial/parallel modes and checks the recorder's invariants: the base-case
// point total covers space-time exactly, every span balances, and parallel
// runs record spawns.
func TestWalkerTelemetry(t *testing.T) {
	sizes := []int{48, 36}
	steps := 16
	want := int64(sizes[0]) * int64(sizes[1]) * int64(steps)
	for _, alg := range []Algorithm{TRAP, STRAP} {
		for _, serial := range []bool{true, false} {
			rec := telemetry.New()
			w := &Walker{
				NDims:      2,
				Algorithm:  alg,
				Serial:     serial,
				TimeCutoff: 2,
				Grain:      1, // spawn aggressively
				Rec:        rec,
			}
			for i, n := range sizes {
				w.Sizes[i] = n
				w.Slopes[i] = 1
				w.Reach[i] = 1
				w.Periodic[i] = true
				w.SpaceCutoff[i] = 8
			}
			nop := func(z zoid.Zoid) {}
			w.Boundary = nop
			w.Interior = nop
			if err := w.Run(1, 1+steps); err != nil {
				t.Fatal(err)
			}
			st := rec.Snapshot()
			name := alg.String()
			if st.BasePoints != want {
				t.Errorf("%s serial=%v: BasePoints = %d, want %d", name, serial, st.BasePoints, want)
			}
			if alg == TRAP && st.HyperCuts == 0 {
				t.Errorf("%s: expected hyperspace cuts", name)
			}
			if alg == STRAP && st.SpaceCuts+st.CircleCuts == 0 {
				t.Errorf("%s: expected trisections or circle cuts", name)
			}
			if serial && st.Spawns != 0 {
				t.Errorf("%s serial: recorded %d spawns", name, st.Spawns)
			}
			if !serial && st.Spawns == 0 {
				t.Errorf("%s parallel: no spawns recorded", name)
			}
			if st.Events%2 != 0 {
				t.Errorf("%s: odd event count %d (unbalanced spans)", name, st.Events)
			}
		}
	}
}

// TestWalkerTelemetryNilIsNoop: a nil recorder must leave behavior alone.
func TestWalkerTelemetryNilIsNoop(t *testing.T) {
	runScenario(t, []int{40, 30}, 12, 1, false, TRAP, false, 2, 8)
}

func TestAlgorithmString(t *testing.T) {
	if TRAP.String() != "TRAP" || STRAP.String() != "STRAP" {
		t.Fatal("bad algorithm names")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm should still render")
	}
}
