package cilkview

import (
	"sync/atomic"
	"testing"

	"pochoir/internal/core"
	"pochoir/internal/zoid"
)

// TestWorkEqualsVolume: the analyzer's work must equal the space-time
// volume exactly (one unit per point) regardless of algorithm.
func TestWorkEqualsVolume(t *testing.T) {
	for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
		for _, d := range []int{1, 2, 3} {
			size, steps := 40, 32
			w := Config(d, size, 1, false, alg)
			a := New(w, DefaultCosts())
			m := a.Analyze(1, 1+steps)
			want := int64(steps)
			for i := 0; i < d; i++ {
				want *= int64(size)
			}
			if m.Work != want {
				t.Fatalf("%v d=%d: work %d, want %d", alg, d, m.Work, want)
			}
			if m.Span <= 0 || m.Span > m.Work {
				t.Fatalf("%v d=%d: span %d out of range (work %d)", alg, d, m.Span, m.Work)
			}
		}
	}
}

// TestMatchesRealDecomposition cross-checks the analyzer's base-case count
// and work against an actual engine run with a counting base function.
func TestMatchesRealDecomposition(t *testing.T) {
	for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
		for _, periodic := range []bool{false, true} {
			w := Config(2, 48, 1, periodic, alg)
			var bases, points atomic.Int64
			w.Serial = true
			w.Boundary = func(z zoid.Zoid) {
				bases.Add(1)
				points.Add(z.Volume())
			}
			if err := w.Run(1, 25); err != nil {
				t.Fatal(err)
			}
			a := New(Config(2, 48, 1, periodic, alg), DefaultCosts())
			m := a.Analyze(1, 25)
			if m.Bases != bases.Load() {
				t.Fatalf("%v periodic=%v: analyzer bases %d, engine %d", alg, periodic, m.Bases, bases.Load())
			}
			if m.Work != points.Load() {
				t.Fatalf("%v periodic=%v: analyzer work %d, engine points %d", alg, periodic, m.Work, points.Load())
			}
		}
	}
}

// TestTrapBeatsStrap2D: the headline of Fig. 9 — with two or more spatial
// dimensions, hyperspace cuts yield more parallelism than serial space
// cuts, and the gap widens with N.
func TestTrapBeatsStrap2D(t *testing.T) {
	prevRatio := 0.0
	for _, n := range []int{64, 128, 256, 512} {
		steps := n / 2
		trap := New(Config(2, n, 1, false, core.TRAP), DefaultCosts()).Analyze(1, 1+steps)
		strap := New(Config(2, n, 1, false, core.STRAP), DefaultCosts()).Analyze(1, 1+steps)
		if trap.Work != strap.Work {
			t.Fatalf("N=%d: TRAP and STRAP must perform identical work (%d vs %d)",
				n, trap.Work, strap.Work)
		}
		pt, ps := trap.Parallelism(), strap.Parallelism()
		if pt <= ps {
			t.Fatalf("N=%d: TRAP parallelism %.1f not above STRAP %.1f", n, pt, ps)
		}
		ratio := pt / ps
		if ratio < prevRatio*0.95 {
			t.Fatalf("N=%d: TRAP/STRAP advantage %.2f shrank from %.2f; should grow with N",
				n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 1.5 {
		t.Fatalf("TRAP advantage at N=512 only %.2fx; expected substantially more", prevRatio)
	}
}

// TestParallelismGrowsWithN: both algorithms' parallelism grows with the
// grid side, as in both Fig. 9 plots.
func TestParallelismGrowsWithN(t *testing.T) {
	for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
		prev := 0.0
		for _, n := range []int{64, 128, 256} {
			m := New(Config(2, n, 1, false, alg), DefaultCosts()).Analyze(1, 1+n/2)
			p := m.Parallelism()
			if p <= prev {
				t.Fatalf("%v: parallelism %.1f at N=%d did not grow (prev %.1f)", alg, p, n, prev)
			}
			prev = p
		}
	}
}

// TestD1Equivalence: for d=1 the theorems give both algorithms the same
// asymptotic parallelism Θ(w^(2-lg 3)); their measured parallelism should
// be within a modest constant of each other.
func TestD1Equivalence(t *testing.T) {
	n := 4096
	trap := New(Config(1, n, 1, false, core.TRAP), DefaultCosts()).Analyze(1, 1+n/4)
	strap := New(Config(1, n, 1, false, core.STRAP), DefaultCosts()).Analyze(1, 1+n/4)
	r := trap.Parallelism() / strap.Parallelism()
	if r < 0.5 || r > 2.0 {
		t.Fatalf("d=1 TRAP/STRAP parallelism ratio %.2f; expected within constant factor", r)
	}
}

// TestCoarseningReducesSpanOverhead: coarsened base cases reduce the zoid
// count dramatically while work stays fixed.
func TestCoarseningReducesZoids(t *testing.T) {
	fine := New(Config(2, 256, 1, false, core.TRAP), DefaultCosts()).Analyze(1, 65)
	w := Config(2, 256, 1, false, core.TRAP)
	w.TimeCutoff = 5
	w.SpaceCutoff[0], w.SpaceCutoff[1] = 100, 100
	coarse := New(w, DefaultCosts()).Analyze(1, 65)
	if coarse.Work != fine.Work {
		t.Fatalf("coarsening changed work: %d vs %d", coarse.Work, fine.Work)
	}
	if coarse.Zoids*10 > fine.Zoids {
		t.Fatalf("coarsening should cut zoid count >10x: %d vs %d", coarse.Zoids, fine.Zoids)
	}
}

// TestMemoizationScales: the uncoarsened Fig. 9 workloads (space-time
// 1000*N^2) must be analyzable without exploding; memoization keeps the
// state logarithmic in N.
func TestMemoizationScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a := New(Config(2, 1600, 1, false, core.TRAP), DefaultCosts())
	m := a.Analyze(1, 1001)
	wantWork := int64(1000) * 1600 * 1600
	if m.Work != wantWork {
		t.Fatalf("work %d, want %d", m.Work, wantWork)
	}
	if len(a.memo) > 2_000_000 {
		t.Fatalf("memo exploded: %d entries", len(a.memo))
	}
	if m.Parallelism() < 100 {
		t.Fatalf("2D N=1600 uncoarsened parallelism %.1f unexpectedly low", m.Parallelism())
	}
}

func TestMetricsParallelismZeroSpan(t *testing.T) {
	if (Metrics{}).Parallelism() != 0 {
		t.Fatal("zero metrics should report zero parallelism")
	}
}

func TestLg(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := lg(n); got != want {
			t.Errorf("lg(%d) = %d, want %d", n, got, want)
		}
	}
}
