// Package cilkview is a work/span analyzer for the TRAP and STRAP
// decompositions, standing in for the Cilkview scalability analyzer the
// paper uses for Fig. 9. It replays the engine's exact recursion
// (cut decisions come from core.Walker.CutSet) without executing any
// kernel, accounting
//
//   - work T1: one unit per space-time grid point, plus per-spawn
//     bookkeeping, and
//   - span T∞: the longest dependency chain, where the subzoids of one
//     dependency level run in parallel and a parallel step over r tasks
//     adds Θ(lg r) to the span (§3, Analysis),
//
// and reports parallelism T1/T∞ — the quantity Fig. 9 plots. Because
// subzoid metrics depend only on translation-invariant geometry, the
// analysis memoizes on a canonical zoid signature and handles the
// uncoarsened recursions of Fig. 9 (down to single grid points) in
// logarithmic-size state.
package cilkview

import (
	"fmt"
	"math/bits"

	"pochoir/internal/core"
	"pochoir/internal/zoid"
)

// Costs weights the accounting. The defaults charge one unit per grid
// point and one unit of span per spawn level, which is how an
// instruction-counting analyzer sees a compiled kernel up to a constant.
type Costs struct {
	// Point is the work (and span) of one kernel application.
	Point int64
	// Spawn is the span overhead multiplier for a parallel step: a step
	// over r tasks adds Spawn*ceil(lg r) to the span.
	Spawn int64
	// Sync is the span overhead of finishing a level (one per level).
	Sync int64
}

// DefaultCosts charges 1 per point, 1 per lg(spawn fan-out), 1 per sync.
func DefaultCosts() Costs { return Costs{Point: 1, Spawn: 1, Sync: 1} }

// Metrics is the analyzer's result.
type Metrics struct {
	Work int64 // T1
	Span int64 // T∞
	// Zoids and Bases count decomposition nodes and base cases.
	Zoids int64
	Bases int64
	// Spawns counts task spawns: a parallel step over r subzoids performs
	// r-1 spawns (the last task runs on the spawning strand, as cilk_spawn
	// does). Syncs counts the fork-join sync points, one per parallel step.
	Spawns int64
	Syncs  int64
}

// Parallelism returns T1/T∞.
func (m Metrics) Parallelism() float64 {
	if m.Span == 0 {
		return 0
	}
	return float64(m.Work) / float64(m.Span)
}

// MetricsView is the JSON-marshalable view of an analysis, with the derived
// parallelism included so consumers (the benchmark lab, the fig9
// experiment) don't re-derive fields by hand.
type MetricsView struct {
	Work        int64   `json:"work"`
	Span        int64   `json:"span"`
	Parallelism float64 `json:"parallelism"`
	Zoids       int64   `json:"zoids"`
	Bases       int64   `json:"bases"`
	Spawns      int64   `json:"spawns"`
	Syncs       int64   `json:"syncs"`
}

// View returns the JSON-marshalable form of m.
func (m Metrics) View() MetricsView {
	return MetricsView{
		Work:        m.Work,
		Span:        m.Span,
		Parallelism: m.Parallelism(),
		Zoids:       m.Zoids,
		Bases:       m.Bases,
		Spawns:      m.Spawns,
		Syncs:       m.Syncs,
	}
}

// Analyzer replays a walker's decomposition.
type Analyzer struct {
	W     *core.Walker
	Costs Costs

	memo map[string]Metrics
}

// New builds an analyzer for a walker configuration. Only the geometric
// fields of the walker are consulted (dims, slopes, sizes, periodicity,
// coarsening, algorithm); base functions are not needed.
func New(w *core.Walker, costs Costs) *Analyzer {
	return &Analyzer{W: w, Costs: costs, memo: make(map[string]Metrics)}
}

// Analyze computes work and span for running home times [t0, t1).
func (a *Analyzer) Analyze(t0, t1 int) Metrics {
	if t1 <= t0 {
		return Metrics{}
	}
	z := zoid.Box(t0, t1, a.W.Sizes[:a.W.NDims])
	if a.W.Algorithm == core.LOOPS {
		return a.analyzeLoops(z)
	}
	return a.analyze(z)
}

// analyzeLoops accounts the LOOPS engine exactly as core.Walker.runLoops
// executes it: each time step is swept as height-1 base cases chunked along
// dimension 0, in order on one strand — so the span equals the work and the
// parallelism is 1.
func (a *Analyzer) analyzeLoops(z zoid.Zoid) Metrics {
	chunk := a.W.SpaceCutoff[0]
	width := z.Hi[0] - z.Lo[0]
	if chunk < 1 {
		chunk = width
	}
	perStep := int64((width + chunk - 1) / chunk)
	vol := z.Volume() * a.Costs.Point
	n := perStep * int64(z.Height())
	return Metrics{Work: vol, Span: vol, Zoids: n, Bases: n}
}

// key builds the canonical translation-invariant signature of z: height
// plus, per dimension, (bottom base, slopes, full-circle flag).
func (a *Analyzer) key(z zoid.Zoid) string {
	buf := make([]byte, 0, 8+z.N*16)
	buf = fmt.Appendf(buf, "%d", z.Height())
	for i := 0; i < z.N; i++ {
		fc := 0
		if a.W.Periodic[i] && z.IsFullCircle(i, a.W.Sizes[i]) {
			fc = 1
		}
		buf = fmt.Appendf(buf, "|%d,%d,%d,%d", z.BottomBase(i), z.DLo[i], z.DHi[i], fc)
	}
	return string(buf)
}

func lg(n int) int64 {
	if n <= 1 {
		return 0
	}
	return int64(bits.Len(uint(n - 1)))
}

func (a *Analyzer) analyze(z zoid.Zoid) Metrics {
	k := a.key(z)
	if m, ok := a.memo[k]; ok {
		return m
	}
	m := a.analyzeUncached(z)
	a.memo[k] = m
	return m
}

func (a *Analyzer) analyzeUncached(z zoid.Zoid) Metrics {
	cuts := a.W.CutSet(z)
	if len(cuts) > 0 {
		switch a.W.Algorithm {
		case core.STRAP:
			return a.strapCut(z, cuts[0])
		default:
			return a.trapCut(z, cuts)
		}
	}
	if h := z.Height(); h > a.W.TimeCutoffEffective() {
		lower, upper := z.TimeCut()
		ml := a.analyze(lower)
		mu := a.analyze(upper)
		return Metrics{
			Work:   ml.Work + mu.Work,
			Span:   ml.Span + mu.Span,
			Zoids:  ml.Zoids + mu.Zoids + 1,
			Bases:  ml.Bases + mu.Bases,
			Spawns: ml.Spawns + mu.Spawns,
			Syncs:  ml.Syncs + mu.Syncs,
		}
	}
	vol := z.Volume() * a.Costs.Point
	return Metrics{Work: vol, Span: vol, Zoids: 1, Bases: 1}
}

// trapCut accounts a hyperspace cut: levels run serially; within a level
// everything runs in parallel, costing the max child span plus the spawn
// bookkeeping for the parallel step.
func (a *Analyzer) trapCut(z zoid.Zoid, cuts []zoid.Cut) Metrics {
	lv := zoid.HyperspaceCut(z, cuts)
	out := Metrics{Zoids: 1}
	for _, level := range lv.Zoids {
		var maxSpan int64
		for _, c := range level {
			m := a.analyze(c)
			out.Work += m.Work
			out.Zoids += m.Zoids
			out.Bases += m.Bases
			out.Spawns += m.Spawns
			out.Syncs += m.Syncs
			if m.Span > maxSpan {
				maxSpan = m.Span
			}
		}
		out.Span += maxSpan + a.Costs.Spawn*lg(len(level)) + a.Costs.Sync
		out.Spawns += int64(len(level) - 1)
		out.Syncs++
	}
	return out
}

// strapCut accounts Frigo–Strumpen-style serial space cuts: one dimension
// is cut, yielding 2 parallel steps, and the recursion rediscovers the
// remaining dimensions one at a time — so k cut dimensions cost 2k parallel
// steps instead of TRAP's k+1.
func (a *Analyzer) strapCut(z zoid.Zoid, c zoid.Cut) Metrics {
	out := Metrics{Zoids: 1}
	addParallel := func(zs []zoid.Zoid) {
		var maxSpan int64
		for _, s := range zs {
			m := a.analyze(s)
			out.Work += m.Work
			out.Zoids += m.Zoids
			out.Bases += m.Bases
			out.Spawns += m.Spawns
			out.Syncs += m.Syncs
			if m.Span > maxSpan {
				maxSpan = m.Span
			}
		}
		out.Span += maxSpan + a.Costs.Spawn*lg(len(zs)) + a.Costs.Sync
		out.Spawns += int64(len(zs) - 1)
		out.Syncs++
	}
	if c.Kind == zoid.CutCircle {
		sub, _ := z.CircleCut(c.Dim, c.Slope, c.Size)
		addParallel(sub[0:2]) // blacks
		addParallel(sub[2:4]) // grays
		return out
	}
	sub, upright := z.SpaceCut(c.Dim, c.Slope)
	if upright {
		addParallel([]zoid.Zoid{sub[0], sub[2]})
		addParallel([]zoid.Zoid{sub[1]})
		return out
	}
	addParallel([]zoid.Zoid{sub[1]})
	addParallel([]zoid.Zoid{sub[0], sub[2]})
	return out
}

// Config builds the core.Walker geometry for a d-dimensional stencil with
// uniform slope on a cubic grid — the Fig. 9 setting — with uncoarsened
// base cases unless cutoffs are supplied.
func Config(ndims, size, slope int, periodic bool, alg core.Algorithm) *core.Walker {
	w := &core.Walker{NDims: ndims, Algorithm: alg, TimeCutoff: 1}
	for i := 0; i < ndims; i++ {
		w.Sizes[i] = size
		w.Slopes[i] = slope
		w.Reach[i] = slope
		w.Periodic[i] = periodic
	}
	return w
}
