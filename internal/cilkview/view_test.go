package cilkview

import (
	"encoding/json"
	"testing"

	"pochoir/internal/core"
)

// TestViewRoundTrip: the JSON view carries every counter plus the derived
// parallelism, unmarshalable back to identical values.
func TestViewRoundTrip(t *testing.T) {
	m := New(Config(2, 64, 1, false, core.TRAP), DefaultCosts()).Analyze(1, 33)
	v := m.View()
	if v.Work != m.Work || v.Span != m.Span || v.Zoids != m.Zoids || v.Bases != m.Bases {
		t.Fatalf("view dropped counters: %+v vs %+v", v, m)
	}
	if v.Parallelism != m.Parallelism() {
		t.Fatalf("view parallelism %f, want %f", v.Parallelism, m.Parallelism())
	}
	if v.Spawns <= 0 || v.Syncs <= 0 {
		t.Fatalf("TRAP analysis recorded no spawns/syncs: %+v", v)
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsView
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Fatalf("round trip changed view: %+v vs %+v", back, v)
	}
}

// TestSpawnSyncCounts: every parallel step over r tasks contributes r-1
// spawns and one sync, so a decomposition with any parallel step at all has
// spawns < bases (each base ran on some strand) and syncs > 0; and the
// serial span accounting is consistent — span plus spawn/sync overhead
// cannot exceed work plus total bookkeeping.
func TestSpawnSyncCounts(t *testing.T) {
	for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
		m := New(Config(2, 96, 1, false, alg), DefaultCosts()).Analyze(1, 49)
		if m.Spawns <= 0 {
			t.Fatalf("%v: no spawns recorded", alg)
		}
		if m.Syncs <= 0 {
			t.Fatalf("%v: no syncs recorded", alg)
		}
		// r-1 spawns per step over r tasks means spawns < total tasks,
		// and every task is a zoid of the decomposition.
		if m.Spawns >= m.Zoids {
			t.Fatalf("%v: %d spawns not below %d zoids", alg, m.Spawns, m.Zoids)
		}
	}
}

// TestAnalyzeLoops: the LOOPS engine is a serial sweep, so work equals span
// (parallelism 1), base count matches the chunked step sweep, and no
// spawns/syncs occur.
func TestAnalyzeLoops(t *testing.T) {
	w := Config(2, 40, 1, false, core.LOOPS)
	w.SpaceCutoff[0] = 16 // 40/16 -> 3 chunks per step
	m := New(w, DefaultCosts()).Analyze(1, 11)
	wantWork := int64(10) * 40 * 40
	if m.Work != wantWork {
		t.Fatalf("work %d, want %d", m.Work, wantWork)
	}
	if m.Span != m.Work {
		t.Fatalf("LOOPS span %d should equal work %d", m.Span, m.Work)
	}
	if got := m.Parallelism(); got != 1 {
		t.Fatalf("LOOPS parallelism %f, want 1", got)
	}
	if want := int64(3 * 10); m.Bases != want || m.Zoids != want {
		t.Fatalf("bases/zoids %d/%d, want %d", m.Bases, m.Zoids, want)
	}
	if m.Spawns != 0 || m.Syncs != 0 {
		t.Fatalf("LOOPS recorded spawns/syncs: %d/%d", m.Spawns, m.Syncs)
	}
}
