// Package faultpoint provides deterministic fault injection for the
// execution engine. The walker exposes two instrumented sites — one before
// every decomposition decision, one before every base-case invocation — and
// tests arm them to trigger panics or stalls at chosen decomposition depths,
// exercising the engine's failure paths (panic isolation, cancellation,
// run-state poisoning) without bespoke hooks in production code.
//
// The design mirrors freebsd/etcd-style failpoints scaled down to this
// engine's needs:
//
//   - Disarmed cost is a single atomic load: every site is guarded by
//     `if faultpoint.Armed() { faultpoint.Visit(site, depth) }`, and Armed
//     reads one package-level counter. No map lookups, no locks, no
//     allocation on the hot path.
//
//   - Armed behaviour is fully deterministic: a Spec selects the action
//     (panic or sleep), the decomposition depth at which to fire, and how
//     many matching visits to skip first, so a test can place a fault at
//     "the third base case at depth 2" and get it every run.
//
//   - Failpoints arm programmatically (Arm/Disarm, used by tests) or from
//     the POCHOIR_FAULTPOINTS environment variable (used to fault-inject
//     unmodified binaries such as cmd/experiments).
//
// The environment spec grammar is a semicolon-separated list of
//
//	site=action[:key=value[,key=value...]]
//
// where site is "walker/cut" or "walker/base", action is "panic", "sleep",
// or "p" (probabilistic panic), and keys are depth (decomposition depth to
// fire at, default any), after (matching visits to skip first, default 0),
// times (matching visits to fire on before auto-disarming, default
// unlimited), msg (panic value), dur (sleep duration, Go syntax), and prob
// (fire each matching visit only with this probability — the soak-test
// mode; the "p" action takes the probability as its first option). For
// example:
//
//	POCHOIR_FAULTPOINTS='walker/base=panic:depth=2,after=3,msg=boom'
//	POCHOIR_FAULTPOINTS='walker/cut=sleep:dur=50ms'
//	POCHOIR_FAULTPOINTS='walker/base=p:0.01'
package faultpoint

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site identifies an instrumented location in the engine.
type Site string

const (
	// SiteCut fires at the top of the walker's recursion, before a zoid is
	// decomposed (or handed to the base case).
	SiteCut Site = "walker/cut"
	// SiteBase fires immediately before a base-case clone is invoked.
	SiteBase Site = "walker/base"
)

// Kind selects what an armed failpoint does when it fires.
type Kind int

const (
	// KindPanic panics with the Spec's Panic value (a *Injected by
	// default), modelling a crashing user kernel or engine bug.
	KindPanic Kind = iota
	// KindSleep blocks the visiting goroutine for the Spec's Sleep
	// duration, modelling a stalled kernel; used to bound cancellation
	// latency deterministically.
	KindSleep
)

// AnyDepth matches every decomposition depth.
const AnyDepth = -1

// Spec configures an armed failpoint.
type Spec struct {
	// Kind is the action taken when the failpoint fires.
	Kind Kind
	// Depth restricts firing to visits at exactly this decomposition
	// depth; AnyDepth (the default via DefaultSpec helpers) matches all.
	Depth int
	// After skips the first After matching visits before firing.
	After int
	// Times bounds how many times the failpoint fires before disarming
	// itself; 0 means unlimited.
	Times int
	// Panic is the value passed to panic for KindPanic; nil panics with a
	// *Injected describing the site.
	Panic any
	// Sleep is the stall duration for KindSleep.
	Sleep time.Duration
	// Prob, when positive, makes each matching visit fire only with this
	// probability (the soak-test mode); zero keeps the fully deterministic
	// behaviour. Visits that lose the roll count toward After but not
	// Times.
	Prob float64
	// Rand overrides the probability source for deterministic tests; nil
	// uses the package's seeded generator.
	Rand func() float64
}

// Injected is the default panic value of a fired KindPanic failpoint.
type Injected struct {
	Site  Site
	Depth int
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faultpoint: injected panic at %s depth %d", e.Site, e.Depth)
}

// state is the registry entry of one armed site.
type state struct {
	spec   Spec
	visits int // matching visits so far (including skipped and fired)
	fired  int // times the action ran
}

var (
	armed atomic.Int32 // number of armed sites; the only disarmed-path cost

	mu     sync.Mutex
	points = map[Site]*state{}
	// probRNG drives probabilistic firing; guarded by mu (Visit holds it
	// when rolling). A fixed seed keeps soak runs reproducible for a given
	// visit sequence.
	probRNG = rand.New(rand.NewSource(0x9e3779b9))
)

// Armed reports whether any failpoint is armed. Instrumented sites gate
// Visit on it so disarmed binaries pay one atomic load per site.
func Armed() bool { return armed.Load() != 0 }

// observer, when set, is notified of every firing failpoint just before its
// action runs; the flight recorder uses it to stamp injected faults into the
// black-box event stream. An atomic pointer so Visit never takes the registry
// lock around the callback.
var observer atomic.Pointer[func(site Site, depth int)]

// SetObserver installs (or, with nil, removes) the fired-failpoint callback.
// The callback runs on the visiting goroutine, after the firing decision and
// before the action (panic or sleep), so it must not itself panic or block.
func SetObserver(fn func(site Site, depth int)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// Arm installs (or replaces) the failpoint at site.
func Arm(site Site, spec Spec) {
	mu.Lock()
	if _, ok := points[site]; !ok {
		armed.Add(1)
	}
	points[site] = &state{spec: spec}
	mu.Unlock()
}

// Disarm removes the failpoint at site, if any.
func Disarm(site Site) {
	mu.Lock()
	if _, ok := points[site]; ok {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// DisarmAll removes every armed failpoint.
func DisarmAll() {
	mu.Lock()
	for site := range points {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Fired returns how many times the failpoint at site has fired since it was
// armed; 0 when the site is not armed.
func Fired(site Site) int {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := points[site]; ok {
		return st.fired
	}
	return 0
}

// Visit is called by an instrumented site with its decomposition depth.
// Callers must gate on Armed(); Visit itself takes the registry lock, which
// is acceptable on the (test-only) armed path. The action — panic or sleep —
// runs outside the lock so stalled goroutines do not serialize the registry.
func Visit(site Site, depth int) {
	mu.Lock()
	st, ok := points[site]
	if !ok {
		mu.Unlock()
		return
	}
	if st.spec.Depth != AnyDepth && st.spec.Depth != depth {
		mu.Unlock()
		return
	}
	st.visits++
	if st.visits <= st.spec.After {
		mu.Unlock()
		return
	}
	if p := st.spec.Prob; p > 0 {
		roll := st.spec.Rand
		if roll == nil {
			roll = probRNG.Float64
		}
		if roll() >= p {
			mu.Unlock()
			return
		}
	}
	spec := st.spec
	st.fired++
	if spec.Times > 0 && st.fired >= spec.Times {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()

	if ob := observer.Load(); ob != nil {
		(*ob)(site, depth)
	}
	switch spec.Kind {
	case KindSleep:
		time.Sleep(spec.Sleep)
	default:
		v := spec.Panic
		if v == nil {
			v = &Injected{Site: site, Depth: depth}
		}
		panic(v)
	}
}

// ArmFromSpec parses and arms failpoints from an environment-style spec
// string (see the package comment for the grammar). An empty spec is a
// no-op. On a parse error nothing is armed.
func ArmFromSpec(env string) error {
	env = strings.TrimSpace(env)
	if env == "" {
		return nil
	}
	type entry struct {
		site Site
		spec Spec
	}
	var entries []entry
	for _, part := range strings.Split(env, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faultpoint: %q: want site=action", part)
		}
		switch Site(site) {
		case SiteCut, SiteBase:
		default:
			return fmt.Errorf("faultpoint: unknown site %q", site)
		}
		action, opts, _ := strings.Cut(rest, ":")
		spec := Spec{Depth: AnyDepth}
		switch action {
		case "panic":
			spec.Kind = KindPanic
		case "sleep":
			spec.Kind = KindSleep
		case "p":
			// Probabilistic panic: the first option is the probability
			// itself (site=p:0.01), further options follow as key=value.
			spec.Kind = KindPanic
			if opts == "" {
				return fmt.Errorf("faultpoint: action p needs a probability (site=p:0.01)")
			}
		default:
			return fmt.Errorf("faultpoint: unknown action %q", action)
		}
		if opts != "" {
			for i, kv := range strings.Split(opts, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					if action == "p" && i == 0 {
						p, err := strconv.ParseFloat(kv, 64)
						if err != nil || p <= 0 || p > 1 {
							return fmt.Errorf("faultpoint: probability %q: want a float in (0,1]", kv)
						}
						spec.Prob = p
						continue
					}
					return fmt.Errorf("faultpoint: option %q: want key=value", kv)
				}
				switch k {
				case "depth":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("faultpoint: depth %q: %v", v, err)
					}
					spec.Depth = n
				case "after":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("faultpoint: after %q: %v", v, err)
					}
					spec.After = n
				case "times":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("faultpoint: times %q: %v", v, err)
					}
					spec.Times = n
				case "msg":
					spec.Panic = v
				case "prob":
					p, err := strconv.ParseFloat(v, 64)
					if err != nil || p <= 0 || p > 1 {
						return fmt.Errorf("faultpoint: prob %q: want a float in (0,1]", v)
					}
					spec.Prob = p
				case "dur":
					d, err := time.ParseDuration(v)
					if err != nil {
						return fmt.Errorf("faultpoint: dur %q: %v", v, err)
					}
					spec.Sleep = d
				default:
					return fmt.Errorf("faultpoint: unknown option %q", k)
				}
			}
		}
		if action == "p" && spec.Prob == 0 {
			return fmt.Errorf("faultpoint: action p needs a probability first (site=p:0.01)")
		}
		entries = append(entries, entry{site: Site(site), spec: spec})
	}
	for _, e := range entries {
		Arm(e.site, e.spec)
	}
	return nil
}

// EnvVar is the environment variable consulted at process start.
const EnvVar = "POCHOIR_FAULTPOINTS"

func init() {
	// Arm from the environment so unmodified binaries can be
	// fault-injected. A malformed spec is reported on stderr rather than
	// silently ignored, but never prevents startup.
	if err := ArmFromSpec(os.Getenv(EnvVar)); err != nil {
		fmt.Fprintf(os.Stderr, "pochoir: ignoring %s: %v\n", EnvVar, err)
	}
}
