package faultpoint

import (
	"testing"
	"time"
)

// visit runs Visit under a recover and reports the recovered value.
func visit(site Site, depth int) (recovered any) {
	defer func() { recovered = recover() }()
	if Armed() {
		Visit(site, depth)
	}
	return nil
}

func TestDisarmedIsInert(t *testing.T) {
	DisarmAll()
	if Armed() {
		t.Fatal("Armed() true with nothing armed")
	}
	if r := visit(SiteBase, 0); r != nil {
		t.Fatalf("disarmed visit fired: %v", r)
	}
}

func TestPanicFiresWithDefaultValue(t *testing.T) {
	defer DisarmAll()
	Arm(SiteBase, Spec{Kind: KindPanic, Depth: AnyDepth})
	if !Armed() {
		t.Fatal("Armed() false after Arm")
	}
	r := visit(SiteBase, 3)
	inj, ok := r.(*Injected)
	if !ok {
		t.Fatalf("recovered %T %v, want *Injected", r, r)
	}
	if inj.Site != SiteBase || inj.Depth != 3 {
		t.Fatalf("Injected = %+v", inj)
	}
	// Other sites stay inert.
	if r := visit(SiteCut, 3); r != nil {
		t.Fatalf("unarmed site fired: %v", r)
	}
}

func TestDepthAndAfterTargeting(t *testing.T) {
	defer DisarmAll()
	Arm(SiteCut, Spec{Kind: KindPanic, Depth: 2, After: 2, Panic: "boom"})
	// Wrong depth: never fires, never counts.
	for i := 0; i < 10; i++ {
		if r := visit(SiteCut, 1); r != nil {
			t.Fatalf("fired at wrong depth: %v", r)
		}
	}
	// Right depth: the first two matching visits are skipped.
	for i := 0; i < 2; i++ {
		if r := visit(SiteCut, 2); r != nil {
			t.Fatalf("fired during After window (visit %d): %v", i, r)
		}
	}
	if r := visit(SiteCut, 2); r != "boom" {
		t.Fatalf("third matching visit recovered %v, want \"boom\"", r)
	}
	if got := Fired(SiteCut); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestTimesAutoDisarms(t *testing.T) {
	defer DisarmAll()
	Arm(SiteBase, Spec{Kind: KindPanic, Depth: AnyDepth, Times: 2})
	for i := 0; i < 2; i++ {
		if r := visit(SiteBase, 0); r == nil {
			t.Fatalf("visit %d did not fire", i)
		}
	}
	if Armed() {
		t.Fatal("still armed after Times fires")
	}
	if r := visit(SiteBase, 0); r != nil {
		t.Fatalf("fired after auto-disarm: %v", r)
	}
}

func TestSleepStalls(t *testing.T) {
	defer DisarmAll()
	const d = 30 * time.Millisecond
	Arm(SiteBase, Spec{Kind: KindSleep, Depth: AnyDepth, Sleep: d})
	start := time.Now()
	if r := visit(SiteBase, 0); r != nil {
		t.Fatalf("sleep failpoint panicked: %v", r)
	}
	if el := time.Since(start); el < d {
		t.Fatalf("slept %v, want >= %v", el, d)
	}
}

func TestArmFromSpec(t *testing.T) {
	defer DisarmAll()
	err := ArmFromSpec("walker/base=panic:depth=2,after=3,times=1,msg=kaput; walker/cut=sleep:dur=5ms")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	base, cut := points[SiteBase], points[SiteCut]
	mu.Unlock()
	if base == nil || cut == nil {
		t.Fatal("sites not armed")
	}
	want := Spec{Kind: KindPanic, Depth: 2, After: 3, Times: 1, Panic: "kaput"}
	if got := base.spec; got.Kind != want.Kind || got.Depth != want.Depth ||
		got.After != want.After || got.Times != want.Times || got.Panic != want.Panic ||
		got.Prob != 0 {
		t.Fatalf("base spec = %+v, want %+v", got, want)
	}
	if cut.spec.Kind != KindSleep || cut.spec.Sleep != 5*time.Millisecond || cut.spec.Depth != AnyDepth {
		t.Fatalf("cut spec = %+v", cut.spec)
	}
}

func TestArmFromSpecErrors(t *testing.T) {
	defer DisarmAll()
	for _, bad := range []string{
		"nonsense",
		"walker/elsewhere=panic",
		"walker/base=explode",
		"walker/base=panic:depth=x",
		"walker/cut=sleep:dur=fast",
		"walker/base=panic:mystery=1",
	} {
		if err := ArmFromSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
		if Armed() {
			t.Errorf("spec %q armed something despite error", bad)
		}
	}
	if err := ArmFromSpec("  "); err != nil {
		t.Errorf("blank spec rejected: %v", err)
	}
}

// seqRand returns a Rand stub that plays back the given rolls in order.
func seqRand(rolls ...float64) func() float64 {
	i := 0
	return func() float64 {
		r := rolls[i%len(rolls)]
		i++
		return r
	}
}

func TestProbabilisticFiresOnWinningRollsOnly(t *testing.T) {
	defer DisarmAll()
	// p=0.25: rolls in [0, 0.25) fire, the rest pass through.
	Arm(SiteBase, Spec{Kind: KindPanic, Depth: AnyDepth, Prob: 0.25,
		Rand: seqRand(0.9, 0.5, 0.1, 0.3)})
	for i, want := range []bool{false, false, true, false} {
		r := visit(SiteBase, 0)
		if fired := r != nil; fired != want {
			t.Fatalf("visit %d: fired=%v, want %v (r=%v)", i, fired, want, r)
		}
	}
	if got := Fired(SiteBase); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestProbabilisticLosingRollsDoNotConsumeTimes(t *testing.T) {
	defer DisarmAll()
	// times=1 must survive any number of losing rolls and fire exactly on
	// the first winning one, then auto-disarm.
	Arm(SiteBase, Spec{Kind: KindPanic, Depth: AnyDepth, Prob: 0.5, Times: 1,
		Rand: seqRand(0.9, 0.9, 0.9, 0.1)})
	for i := 0; i < 3; i++ {
		if r := visit(SiteBase, 0); r != nil {
			t.Fatalf("losing visit %d fired: %v", i, r)
		}
	}
	if r := visit(SiteBase, 0); r == nil {
		t.Fatal("winning roll did not fire")
	}
	if Armed() {
		t.Fatal("times=1 did not auto-disarm after firing")
	}
}

func TestProbabilisticRespectsAfter(t *testing.T) {
	defer DisarmAll()
	// The first After visits never roll; a winning roll right after does.
	Arm(SiteBase, Spec{Kind: KindPanic, Depth: AnyDepth, Prob: 1, After: 2,
		Rand: seqRand(0.0)})
	for i := 0; i < 2; i++ {
		if r := visit(SiteBase, 0); r != nil {
			t.Fatalf("skipped visit %d fired: %v", i, r)
		}
	}
	if r := visit(SiteBase, 0); r == nil {
		t.Fatal("post-After visit with p=1 did not fire")
	}
}

func TestArmFromSpecProbabilistic(t *testing.T) {
	defer DisarmAll()
	if err := ArmFromSpec("walker/base=p:0.01,times=3"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	st := points[SiteBase]
	mu.Unlock()
	if st == nil {
		t.Fatal("site not armed")
	}
	if st.spec.Kind != KindPanic || st.spec.Prob != 0.01 || st.spec.Times != 3 {
		t.Fatalf("spec = %+v, want probabilistic panic p=0.01 times=3", st.spec)
	}
	DisarmAll()
	// prob= as a key on a plain panic action works too.
	if err := ArmFromSpec("walker/cut=panic:prob=0.5,msg=zap"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	st = points[SiteCut]
	mu.Unlock()
	if st == nil || st.spec.Prob != 0.5 || st.spec.Panic != "zap" {
		t.Fatalf("spec = %+v, want prob=0.5 msg=zap", st.spec)
	}
	DisarmAll()
	for _, bad := range []string{
		"walker/base=p",
		"walker/base=p:",
		"walker/base=p:0",
		"walker/base=p:1.5",
		"walker/base=p:x",
		"walker/base=panic:prob=0",
		"walker/base=panic:prob=2",
	} {
		if err := ArmFromSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
		if Armed() {
			t.Errorf("spec %q armed something despite error", bad)
			DisarmAll()
		}
	}
}
