package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Schema identifies the post-mortem bundle format. Consumers (cmd/blackbox,
// dashboards) must check it before interpreting the rest.
const Schema = "pochoir-postmortem/v1"

// DirEnvVar overrides the diagnostics directory bundles are written to.
// The value "off" disables writing (the in-memory last incident is still
// recorded); empty selects DefaultDir.
const DirEnvVar = "POCHOIR_POSTMORTEM_DIR"

// maxBundles bounds how many bundles the diagnostics directory retains;
// older ones are pruned after each write so unattended services never fill
// a disk with crash dumps.
const maxBundles = 16

// ZoidInfo is the JSON view of the space-time zoid attributed to a failure.
type ZoidInfo struct {
	T0 int   `json:"t0"`
	T1 int   `json:"t1"`
	Lo []int `json:"lo"`
	Hi []int `json:"hi"`
}

// Cause classifies the terminal failure that triggered the bundle.
type Cause struct {
	// Kind is one of kernel-panic, engine-panic, verify-mismatch,
	// canceled, deadline, poisoned, or error.
	Kind string `json:"kind"`
	// Error is the terminal error string.
	Error string `json:"error"`
	// Zoid is the base-case zoid a kernel panic was executing, when known.
	Zoid *ZoidInfo `json:"zoid,omitempty"`
}

// HostInfo records where the incident happened.
type HostInfo struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	PID       int    `json:"pid"`
	Hostname  string `json:"hostname,omitempty"`
	// Commit is the VCS revision baked into the binary, when built from a
	// checkout ("(devel)" builds report it via debug.ReadBuildInfo).
	Commit string `json:"commit,omitempty"`
}

// CollectHost fills a HostInfo for this process.
func CollectHost() HostInfo {
	h := HostInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		PID:       os.Getpid(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				h.Commit = s.Value
				break
			}
		}
	}
	return h
}

// ResumeHint points at the newest durable checkpoint a crashed supervised
// run had spilled (SupervisePolicy.SpillDir): the journal directory, the
// newest good entry's path, and the resume cursor it restores to. A fresh
// process hands Dir back to ResumeSupervised to continue the run.
type ResumeHint struct {
	Dir  string `json:"dir"`
	Path string `json:"path"`
	Step int    `json:"step"`
}

// RunInfo records what the failing run was computing.
type RunInfo struct {
	NDims      int    `json:"ndims"`
	Sizes      []int  `json:"sizes"`
	StepsRun   int    `json:"steps_run"`
	Algorithm  string `json:"algorithm"`
	Supervised bool   `json:"supervised"`
}

// Bundle is the schema-versioned post-mortem artifact written on terminal
// failures: the merged time-ordered recent event window plus every
// diagnostic section the failing layer could contribute. Sections owned by
// other packages (telemetry stats, the metrics snapshot, the supervisor
// report with its checkpoint/segment provenance) are embedded as raw JSON so
// flight stays dependency-free.
type Bundle struct {
	Schema    string    `json:"schema"`
	WrittenAt time.Time `json:"written_at"`
	Cause     Cause     `json:"cause"`
	Host      HostInfo  `json:"host"`
	Run       RunInfo   `json:"run"`

	// TotalEvents counts events ever recorded (the window is the last
	// len(Events) of them); Lanes is the worker-lane count.
	TotalEvents uint64  `json:"total_events"`
	Lanes       int     `json:"lanes"`
	Events      []Event `json:"events"`

	// RunStats is the telemetry summary of the failing run, when telemetry
	// was armed (telemetry.Summary JSON).
	RunStats json.RawMessage `json:"run_stats,omitempty"`
	// Metrics is the metrics registry snapshot, when metrics were armed
	// (metrics.Status JSON).
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Supervisor is the resilience report of a supervised run — segments,
	// attempts, checkpoints, restores, and the ordered SupEvent decision
	// log (resilience.Report JSON).
	Supervisor json.RawMessage `json:"supervisor,omitempty"`
	// Resume, when the failing run had durable spilling enabled, points at
	// the newest durably spilled checkpoint — the "resume from here" pointer
	// for a fresh process.
	Resume *ResumeHint `json:"resume,omitempty"`

	// Profile embeds the continuous profiler's aggregated CPU attribution
	// for the incident window (profile.Report JSON, schema
	// pochoir-profile/v1), when a profiler was running — the "where was
	// the CPU when it died" section.
	Profile json.RawMessage `json:"profile,omitempty"`

	// TraceID names the causal trace of the failing run, and Trace embeds
	// its live snapshot (trace.Export JSON, schema pochoir-trace/v1) when
	// tracing was armed — the incident's span tree down to the failing
	// segment attempt, even though the trace never reached the tail
	// sampler.
	TraceID string          `json:"trace_id,omitempty"`
	Trace   json.RawMessage `json:"trace,omitempty"`

	// Goroutines is a full goroutine dump captured at incident time.
	Goroutines string `json:"goroutines,omitempty"`
}

// CaptureGoroutines returns a bounded dump of every goroutine's stack.
func CaptureGoroutines() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}

// ReadBundle loads and validates a bundle from path.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("flight: %s: schema %q, want %q", path, b.Schema, Schema)
	}
	return &b, nil
}

// Incident is the in-memory record of the most recent bundle, served live at
// /debug/flightz by the monitor server.
type Incident struct {
	Time   time.Time `json:"time"`
	Cause  Cause     `json:"cause"`
	Path   string    `json:"bundle_path,omitempty"`
	Bundle *Bundle   `json:"-"`
}

// IncidentSummary is the compact /statusz view of the last incident.
// TraceID and TraceURL point at the incident's causal trace when the
// failing run was traced: the ID resolves at /tracez/<id>.
type IncidentSummary struct {
	Time     time.Time `json:"time"`
	Cause    string    `json:"cause"`
	Error    string    `json:"error,omitempty"`
	Path     string    `json:"bundle_path,omitempty"`
	TraceID  string    `json:"trace_id,omitempty"`
	TraceURL string    `json:"trace_url,omitempty"`
}

var (
	incidentMu   sync.Mutex
	lastIncident *Incident
)

// LastIncident returns the most recent incident of this process, or nil.
func LastIncident() *Incident {
	incidentMu.Lock()
	defer incidentMu.Unlock()
	return lastIncident
}

// LastIncidentSummary returns the compact view of the last incident, or nil.
func LastIncidentSummary() *IncidentSummary {
	inc := LastIncident()
	if inc == nil {
		return nil
	}
	s := &IncidentSummary{Time: inc.Time, Cause: inc.Cause.Kind, Error: inc.Cause.Error, Path: inc.Path}
	if inc.Bundle != nil && inc.Bundle.TraceID != "" {
		s.TraceID = inc.Bundle.TraceID
		s.TraceURL = "/tracez/" + inc.Bundle.TraceID
	}
	return s
}

// ResetLastIncident clears the last-incident record (tests).
func ResetLastIncident() {
	incidentMu.Lock()
	lastIncident = nil
	incidentMu.Unlock()
}

// DefaultDir returns the diagnostics directory: DirEnvVar when set,
// otherwise a pochoir-postmortem directory under the OS temp dir.
func DefaultDir() string {
	if d := os.Getenv(DirEnvVar); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "pochoir-postmortem")
}

// ReportIncident finalizes and publishes a bundle: stamps schema and time,
// records it as the process's last incident, and — unless writing is
// disabled with POCHOIR_POSTMORTEM_DIR=off — writes it to dir (empty
// selects DefaultDir), pruning old bundles beyond the retention cap. The
// write path is returned; a write error never masks the incident, which is
// still published in memory.
func ReportIncident(b *Bundle, dir string) (string, error) {
	b.Schema = Schema
	if b.WrittenAt.IsZero() {
		b.WrittenAt = time.Now()
	}
	if dir == "" {
		dir = DefaultDir()
	}

	incidentMu.Lock()
	defer incidentMu.Unlock()

	inc := &Incident{Time: b.WrittenAt, Cause: b.Cause, Bundle: b}
	lastIncident = inc
	if dir == "off" {
		return "", nil
	}
	path, err := writeBundleLocked(b, dir)
	if err != nil {
		return "", err
	}
	inc.Path = path
	return path, nil
}

// writeBundleLocked writes the bundle under a sortable timestamped name and
// prunes the directory to the retention cap. The write goes through a temp
// file in the same directory and an atomic rename, so a process dying
// mid-dump (the exact situation bundles exist for) never leaves a truncated
// bundle a reader could mistake for a complete one. Caller holds incidentMu,
// which serializes concurrent failing runs.
func writeBundleLocked(b *Bundle, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	name := fmt.Sprintf("postmortem-%020d-%d.json", b.WrittenAt.UnixNano(), os.Getpid())
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-postmortem-")
	if err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("flight: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("flight: %w", err)
	}
	pruneLocked(dir)
	return path, nil
}

// pruneLocked removes the oldest postmortem bundles beyond maxBundles. Names
// embed a zero-padded UnixNano, so lexical order is chronological.
func pruneLocked(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && len(n) > 11 && n[:11] == "postmortem-" && filepath.Ext(n) == ".json" {
			names = append(names, n)
		}
	}
	if len(names) <= maxBundles {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-maxBundles] {
		_ = os.Remove(filepath.Join(dir, n))
	}
}
