package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testBundle(kind string) *Bundle {
	return &Bundle{
		Cause: Cause{Kind: kind, Error: "boom", Zoid: &ZoidInfo{T0: 1, T1: 3, Lo: []int{0}, Hi: []int{64}}},
		Host:  CollectHost(),
		Run:   RunInfo{NDims: 1, Sizes: []int{64}, StepsRun: 10, Algorithm: "TRAP"},
		Events: []Event{
			{TS: 1, Kind: EvRunStart, A0: 0, A1: 0, A2: 10},
			{TS: 2, Kind: EvBase, A0: PackPair(0, 2), A1: PackPair(0, 64), A2: 128 << 1},
			{TS: 3, Kind: EvPanic, A0: PackPair(0, 2), A1: PackPair(0, 64), A2: PanicBase},
		},
		TotalEvents: 3,
		Lanes:       defaultShards,
		RunStats:    json.RawMessage(`{"base_points":640}`),
		Goroutines:  "goroutine 1 [running]:\n",
	}
}

func TestReportIncidentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ResetLastIncident()
	path, err := ReportIncident(testBundle("kernel-panic"), dir)
	if err != nil {
		t.Fatalf("ReportIncident: %v", err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("bundle written to %q, want under %q", path, dir)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if b.Schema != Schema {
		t.Errorf("schema = %q, want %q", b.Schema, Schema)
	}
	if b.Cause.Kind != "kernel-panic" || b.Cause.Error != "boom" {
		t.Errorf("cause = %+v", b.Cause)
	}
	if b.Cause.Zoid == nil || b.Cause.Zoid.T1 != 3 {
		t.Errorf("zoid = %+v", b.Cause.Zoid)
	}
	if len(b.Events) != 3 || b.Events[2].Kind != EvPanic {
		t.Errorf("events = %+v", b.Events)
	}
	var stats struct {
		BasePoints int `json:"base_points"`
	}
	if err := json.Unmarshal(b.RunStats, &stats); err != nil || stats.BasePoints != 640 {
		t.Errorf("run_stats = %s (err %v)", b.RunStats, err)
	}
	if b.Host.GoVersion == "" || b.Host.NumCPU <= 0 {
		t.Errorf("host = %+v", b.Host)
	}

	inc := LastIncident()
	if inc == nil || inc.Path != path || inc.Cause.Kind != "kernel-panic" {
		t.Errorf("LastIncident = %+v", inc)
	}
	sum := LastIncidentSummary()
	if sum == nil || sum.Cause != "kernel-panic" || sum.Error != "boom" || sum.Path != path {
		t.Errorf("LastIncidentSummary = %+v", sum)
	}
	ResetLastIncident()
	if LastIncident() != nil || LastIncidentSummary() != nil {
		t.Error("ResetLastIncident left an incident behind")
	}
}

func TestReportIncidentOff(t *testing.T) {
	ResetLastIncident()
	path, err := ReportIncident(testBundle("error"), "off")
	if err != nil {
		t.Fatalf("ReportIncident(off): %v", err)
	}
	if path != "" {
		t.Errorf("path = %q, want empty when writing is off", path)
	}
	inc := LastIncident()
	if inc == nil || inc.Cause.Kind != "error" || inc.Path != "" {
		t.Errorf("incident must still publish in memory: %+v", inc)
	}
	ResetLastIncident()
}

func TestReadBundleRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"pochoir-postmortem/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("ReadBundle on wrong schema: err = %v", err)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil {
		t.Error("ReadBundle accepted malformed JSON")
	}
}

func TestRetentionPrunesOldBundles(t *testing.T) {
	dir := t.TempDir()
	ResetLastIncident()
	defer ResetLastIncident()
	base := time.Now().Add(-time.Hour)
	for i := 0; i < maxBundles+5; i++ {
		b := testBundle("error")
		b.WrittenAt = base.Add(time.Duration(i) * time.Second)
		if _, err := ReportIncident(b, dir); err != nil {
			t.Fatalf("bundle %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != maxBundles {
		t.Fatalf("retained %d bundles, want %d", len(entries), maxBundles)
	}
	// The survivors must be the newest ones: their embedded timestamps all
	// land in the last maxBundles seconds of the sequence.
	for _, e := range entries {
		b, err := ReadBundle(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if b.WrittenAt.Before(base.Add(5 * time.Second)) {
			t.Errorf("%s survived pruning but is among the oldest (%v)", e.Name(), b.WrittenAt)
		}
	}
	// Unrelated files are never pruned.
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReportIncident(testBundle("error"), dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("pruning removed an unrelated file: %v", err)
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv(DirEnvVar, "/some/where")
	if got := DefaultDir(); got != "/some/where" {
		t.Errorf("DefaultDir with env = %q", got)
	}
	t.Setenv(DirEnvVar, "")
	want := filepath.Join(os.TempDir(), "pochoir-postmortem")
	if got := DefaultDir(); got != want {
		t.Errorf("DefaultDir = %q, want %q", got, want)
	}
}

func TestBundleJSONStableFieldNames(t *testing.T) {
	data, err := json.Marshal(testBundle("deadline"))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"schema"`, `"written_at"`, `"cause"`, `"kind"`, `"error"`, `"zoid"`,
		`"host"`, `"go_version"`, `"run"`, `"ndims"`, `"steps_run"`,
		`"total_events"`, `"lanes"`, `"events"`, `"ts_ns"`, `"worker"`,
		`"run_stats"`, `"goroutines"`,
	} {
		if !strings.Contains(string(data), field) {
			t.Errorf("bundle JSON missing field %s", field)
		}
	}
}

func TestConcurrentReportIncident(t *testing.T) {
	dir := t.TempDir()
	ResetLastIncident()
	defer ResetLastIncident()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			b := testBundle("error")
			b.WrittenAt = time.Now().Add(time.Duration(i) * time.Millisecond)
			_, err := ReportIncident(b, dir)
			done <- err
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent ReportIncident: %v", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("wrote %d bundles, want 4: %v", len(entries), names)
	}
	if LastIncident() == nil {
		t.Fatal("no last incident after concurrent reports")
	}
}

func ExampleReadBundle() {
	dir, _ := os.MkdirTemp("", "flight-example")
	defer os.RemoveAll(dir)
	b := &Bundle{Cause: Cause{Kind: "kernel-panic", Error: "index out of range"}}
	path, _ := ReportIncident(b, dir)
	loaded, _ := ReadBundle(path)
	fmt.Println(loaded.Schema, loaded.Cause.Kind)
	// Output: pochoir-postmortem/v1 kernel-panic
}
