// Package flight is the black-box flight recorder: an always-on, bounded-
// overhead ring buffer of recent execution events that the engine layers
// append to on every run, so that when a run dies — kernel panic, watchdog
// trip, shadow-verify mismatch, poisoning — a post-mortem bundle can show
// what the engine was doing in the seconds before, even on runs nobody was
// watching.
//
// It complements the opt-in observability layers: internal/telemetry records
// everything but is too heavy to leave on, and internal/metrics keeps only
// aggregate counters with no notion of "recently". The flight recorder sits
// between them: a fixed budget of recent events (cuts with kind and fanout,
// base-case entries with zoid coordinates, engine transitions, supervisor
// decisions, faultpoint trips, cancellation and panic markers) that
// overwrites itself forever and is only ever read when something goes wrong.
//
// Write-path design (the load-bearing part):
//
//   - The recorder is sharded: a small power-of-two array of rings, and a
//     writer picks its ring from the address of a stack variable — the same
//     registration-free trick as the metrics counter stripes — so concurrent
//     workers land on different rings without locks or per-goroutine state.
//
//   - Each ring slot is a per-slot seqlock of atomic words: a writer claims
//     a slot with one atomic add on the shard cursor, zeroes the slot's
//     sequence, stores the fields, and publishes the new sequence. Readers
//     (Snapshot) validate the sequence before and after copying a slot and
//     drop torn slots. Appends therefore never block, never allocate after
//     construction, and are safe against a concurrent dump under -race.
//
//   - Timestamps are coarse: a shared nanosecond clock refreshed every
//     clockEvery appends per shard, so most appends pay no clock read. Events
//     between refreshes share a timestamp; Snapshot orders them by (time,
//     shard, sequence), which preserves per-worker order exactly.
//
// The package is dependency-free so every layer (core, sched via hooks,
// resilience, metrics) can feed or read it without import cycles. The
// process-wide Default recorder is what "always on" means: engines fall back
// to it when no recorder is configured, and the POCHOIR_FLIGHT /
// POCHOIR_FLIGHT_RING environment variables disable or resize it.
package flight

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
	"unsafe"
)

// Kind classifies one recorded event. The three A0..A2 arguments are
// kind-specific; Describe renders them.
type Kind uint8

const (
	// EvRunStart marks a walker run (or supervised segment attempt)
	// entering the engine: A0 = algorithm (0 TRAP, 1 STRAP, 2 LOOPS),
	// A1 = first home time, A2 = end home time.
	EvRunStart Kind = iota
	// EvRunEnd marks the walker returning: A0 = outcome (0 ok, 1 error,
	// 2 cancelled/deadline).
	EvRunEnd
	// EvCut is one decomposition decision: A0 = cut kind (0 hyperspace,
	// 1 space, 2 circle, 3 time), A1 = dims-cut / dim / dim / height,
	// A2 = subzoid fanout (hyperspace only).
	EvCut
	// EvBase is a base-case entry: A0 = PackPair(t0, t1), A1 =
	// PackPair(lo0, hi0) of dimension 0, A2 = volume<<1 | interior bit.
	EvBase
	// EvPanic marks a panic: A0 = PackPair(t0, t1) and A1 =
	// PackPair(lo0, hi0) of the base-case zoid (zero for non-base panics),
	// A2 = source (0 base-case kernel, 1 scheduler sync point).
	EvPanic
	// EvCancel marks the run's cancellation flag latching (context cancel
	// or deadline).
	EvCancel
	// EvSup is one supervisor decision: A0 = telemetry.SupKind code,
	// A1 = segment index, A2 = attempt number.
	EvSup
	// EvFault marks an armed faultpoint firing: A0 = site (0 walker/cut,
	// 1 walker/base), A1 = decomposition depth.
	EvFault
	// EvJob is one gateway job-lifecycle transition: A0 = JobSubmit..
	// JobDrainEnd code, A1 = numeric job id (0 when none), A2 = queue depth
	// at the transition. A crashed daemon's post-mortem bundle therefore
	// names the jobs that were in flight.
	EvJob
	// EvSLO is one SLO burn-rate transition from the metrics SLO engine:
	// A0 = severity (0 recovered, 1 slow-burn breach, 2 fast-burn breach),
	// A1 = objective index in registration order, A2 = burn rate ×1000 of
	// the window that tripped.
	EvSLO

	numKinds
)

var kindNames = [numKinds]string{
	EvRunStart: "run-start",
	EvRunEnd:   "run-end",
	EvCut:      "cut",
	EvBase:     "base",
	EvPanic:    "panic",
	EvCancel:   "cancel",
	EvSup:      "sup",
	EvFault:    "fault",
	EvJob:      "job",
	EvSLO:      "slo",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its stable string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the string name back (bundles round-trip through
// cmd/blackbox).
func (k *Kind) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("flight: unknown event kind %q", s)
}

// PackPair packs two int32-ranged values into one event argument; zoid
// coordinates and home times are well within range.
func PackPair(a, b int) int64 {
	return int64(uint64(uint32(int32(a)))<<32 | uint64(uint32(int32(b))))
}

// UnpackPair reverses PackPair.
func UnpackPair(v int64) (a, b int) {
	return int(int32(uint64(v) >> 32)), int(int32(uint64(v)))
}

var engineNames = [3]string{"TRAP", "STRAP", "LOOPS"}

// EngineName renders an EvRunStart algorithm argument.
func EngineName(a int64) string {
	if a >= 0 && int(a) < len(engineNames) {
		return engineNames[a]
	}
	return fmt.Sprintf("engine(%d)", a)
}

// Cut kind codes of EvCut's A0.
const (
	CutHyper  = 0
	CutSpace  = 1
	CutCircle = 2
	CutTime   = 3
)

// Panic source codes of EvPanic's A2.
const (
	PanicBase  = 0
	PanicSched = 1
)

// Job lifecycle codes of EvJob's A0, recorded by the serving gateway.
const (
	JobSubmit   = 0 // submission received
	JobAdmit    = 1 // admitted to the queue
	JobShed     = 2 // rejected by admission control (429)
	JobCoalesce = 3 // merged into an identical in-flight job
	JobStart    = 4 // a worker began executing the job
	JobDone     = 5 // completed successfully
	JobFail     = 6 // terminal failure (supervisor give-up, deadline)
	JobDrainBeg = 7 // drain started; A2 = jobs still in flight
	JobDrainEnd = 8 // drain finished; A2 = jobs completed during drain
	numJobCodes = 9
)

var jobCodeNames = [numJobCodes]string{
	"submit", "admit", "shed", "coalesce", "start", "done", "fail",
	"drain-begin", "drain-end",
}

func jobCodeName(code int64) string {
	if code >= 0 && int(code) < len(jobCodeNames) {
		return jobCodeNames[code]
	}
	return fmt.Sprintf("job(%d)", code)
}

// Event is one decoded flight-recorder entry. Seq orders events within a
// worker lane; TS is coarse nanoseconds since the recorder's epoch.
type Event struct {
	TS     int64  `json:"ts_ns"`
	Worker int    `json:"worker"`
	Seq    uint64 `json:"seq"`
	Kind   Kind   `json:"kind"`
	A0     int64  `json:"a0"`
	A1     int64  `json:"a1"`
	A2     int64  `json:"a2"`
}

// Describe renders the event as a one-line log entry with its kind-specific
// arguments decoded.
func (e Event) Describe() string {
	switch e.Kind {
	case EvRunStart:
		return fmt.Sprintf("run-start engine=%s t=[%d,%d)", EngineName(e.A0), e.A1, e.A2)
	case EvRunEnd:
		switch e.A0 {
		case 0:
			return "run-end ok"
		case 2:
			return "run-end cancelled"
		}
		return "run-end error"
	case EvCut:
		switch e.A0 {
		case CutHyper:
			return fmt.Sprintf("hyperspace-cut k=%d fanout=%d", e.A1, e.A2)
		case CutSpace:
			return fmt.Sprintf("space-cut dim=%d", e.A1)
		case CutCircle:
			return fmt.Sprintf("circle-cut dim=%d", e.A1)
		}
		return fmt.Sprintf("time-cut height=%d", e.A1)
	case EvBase:
		t0, t1 := UnpackPair(e.A0)
		lo, hi := UnpackPair(e.A1)
		clone := "boundary"
		if e.A2&1 != 0 {
			clone = "interior"
		}
		return fmt.Sprintf("base t=[%d,%d) x0=[%d,%d) vol=%d %s", t0, t1, lo, hi, e.A2>>1, clone)
	case EvPanic:
		if e.A2 == PanicSched {
			return "panic captured at scheduler sync point"
		}
		t0, t1 := UnpackPair(e.A0)
		lo, hi := UnpackPair(e.A1)
		return fmt.Sprintf("panic in base t=[%d,%d) x0=[%d,%d)", t0, t1, lo, hi)
	case EvCancel:
		return "cancellation latched"
	case EvSup:
		return fmt.Sprintf("supervisor %s seg=%d attempt=%d", supKindName(e.A0), e.A1, e.A2)
	case EvFault:
		site := "walker/cut"
		if e.A0 == 1 {
			site = "walker/base"
		}
		return fmt.Sprintf("faultpoint fired at %s depth=%d", site, e.A1)
	case EvJob:
		return fmt.Sprintf("job %s id=%d queue=%d", jobCodeName(e.A0), e.A1, e.A2)
	case EvSLO:
		sev := "recovered"
		switch e.A0 {
		case 1:
			sev = "slow-burn breach"
		case 2:
			sev = "fast-burn breach"
		}
		return fmt.Sprintf("slo %s objective=%d burn=%d.%03d", sev, e.A1, e.A2/1000, e.A2%1000)
	}
	return fmt.Sprintf("%s a0=%d a1=%d a2=%d", e.Kind, e.A0, e.A1, e.A2)
}

// supKindNames mirrors telemetry.SupKind's String values without importing
// the package (flight stays dependency-free).
var supKindNames = []string{
	"segment-start", "segment-done", "segment-fail", "checkpoint", "restore",
	"retry-backoff", "degrade", "verify-ok", "verify-mismatch", "give-up",
	"spill", "resume",
}

func supKindName(code int64) string {
	if code >= 0 && int(code) < len(supKindNames) {
		return supKindNames[code]
	}
	return fmt.Sprintf("sup(%d)", code)
}

// slot is one ring entry: a per-slot seqlock of atomic words. seq is 0 while
// a writer is mid-store and cursor+1 once the slot is published, so a reader
// that sees the same nonzero seq before and after copying the fields has a
// consistent event.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	a0   atomic.Int64
	a1   atomic.Int64
	a2   atomic.Int64
	kind atomic.Uint32
}

// shard is one worker lane: a private cursor and its ring.
type shard struct {
	cursor atomic.Uint64
	_      [120]byte // keep hot cursors on distinct cache lines
	ring   []slot
}

// clockEvery is how many appends per shard share one coarse clock reading.
const clockEvery = 16

// DefaultRing is the per-worker-lane ring capacity of the default recorder:
// 8 lanes x 2048 events is a few seconds of decomposition history on any
// workload while staying ~1 MiB of fixed memory.
const DefaultRing = 2048

// defaultShards bounds the lane count; lanes are hash-distributed, so more
// lanes than cores buys nothing.
const defaultShards = 8

// Recorder is the black-box recorder. The zero value is not usable; call
// New. A nil *Recorder is the disabled recorder: Record and Snapshot on nil
// are safe no-ops, so call sites need no guards beyond the pointer they
// already hold.
type Recorder struct {
	epoch  time.Time
	coarse atomic.Int64 // cached nanoseconds since epoch
	frozen atomic.Bool
	mask   uint32
	shards []shard
}

// New creates a recorder with ringSize slots per worker lane; ringSize <= 0
// selects DefaultRing. Sizes round up to a power of two.
func New(ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRing
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	n := defaultShards
	r := &Recorder{epoch: time.Now(), mask: uint32(n - 1), shards: make([]shard, n)}
	for i := range r.shards {
		r.shards[i].ring = make([]slot, size)
	}
	return r
}

// laneIndex derives a shard index from the address of a stack variable, as
// the metrics counter stripes do: goroutine stacks occupy disjoint address
// ranges, so concurrent workers spread across lanes with no registration.
func laneIndex() uint32 {
	var b byte
	return uint32((uint64(uintptr(unsafe.Pointer(&b))) >> 6) * 0x9e3779b97f4a7c15 >> 32)
}

// Record appends one event. It is safe from any goroutine, never blocks,
// never allocates, and is a no-op on a nil or frozen recorder — the
// always-on cost when recording is a handful of atomic stores per event,
// and events fire per zoid, never per grid point.
func (r *Recorder) Record(kind Kind, a0, a1, a2 int64) {
	if r == nil || r.frozen.Load() {
		return
	}
	sh := &r.shards[laneIndex()&r.mask]
	idx := sh.cursor.Add(1) - 1
	var ts int64
	if idx%clockEvery == 0 {
		ts = int64(time.Since(r.epoch))
		r.coarse.Store(ts)
	} else {
		ts = r.coarse.Load()
	}
	s := &sh.ring[idx&uint64(len(sh.ring)-1)]
	s.seq.Store(0) // mark mid-write; concurrent readers drop the slot
	s.ts.Store(ts)
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.a2.Store(a2)
	s.kind.Store(uint32(kind))
	s.seq.Store(idx + 1)
}

// Freeze latches the recorder read-only so an incident window is not
// overwritten while a bundle is assembled; Unfreeze resumes recording.
// Both are idempotent.
func (r *Recorder) Freeze() {
	if r != nil {
		r.frozen.Store(true)
	}
}

// Unfreeze re-enables recording after Freeze.
func (r *Recorder) Unfreeze() {
	if r != nil {
		r.frozen.Store(false)
	}
}

// TotalRecorded returns how many events have ever been appended, including
// those the rings have since overwritten.
func (r *Recorder) TotalRecorded() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.shards {
		n += r.shards[i].cursor.Load()
	}
	return n
}

// Lanes returns the number of worker lanes (shards).
func (r *Recorder) Lanes() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Snapshot copies every currently-readable event, merged across lanes and
// ordered by (timestamp, lane, sequence). It is safe to call concurrently
// with Record: slots a writer is mid-overwrite are dropped (per-slot
// seqlock), so the result is always a set of complete events. Snapshot on a
// nil recorder returns nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for si := range r.shards {
		sh := &r.shards[si]
		for i := range sh.ring {
			s := &sh.ring[i]
			seq := s.seq.Load()
			if seq == 0 {
				continue
			}
			ev := Event{
				TS:     s.ts.Load(),
				Worker: si,
				Seq:    seq - 1,
				Kind:   Kind(s.kind.Load()),
				A0:     s.a0.Load(),
				A1:     s.a1.Load(),
				A2:     s.a2.Load(),
			}
			if s.seq.Load() != seq {
				continue // torn: a writer claimed the slot mid-copy
			}
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Window returns the snapshot restricted to the last d of recorded time
// (relative to the newest event).
func (r *Recorder) Window(d time.Duration) []Event {
	evs := r.Snapshot()
	if len(evs) == 0 || d <= 0 {
		return evs
	}
	cut := evs[len(evs)-1].TS - d.Nanoseconds()
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].TS >= cut })
	return evs[lo:]
}

// Default recorder plumbing. Engines fall back to Default() when no recorder
// is configured, which is what makes black-box capture always-on. The
// POCHOIR_FLIGHT environment variable set to "off" (or "0", "false")
// disables it process-wide; POCHOIR_FLIGHT_RING resizes its per-lane rings.
var defaultRec atomic.Pointer[Recorder]

// EnvVar disables the default recorder when set to off/0/false.
const EnvVar = "POCHOIR_FLIGHT"

// RingEnvVar overrides the default recorder's per-lane ring capacity.
const RingEnvVar = "POCHOIR_FLIGHT_RING"

func init() {
	switch os.Getenv(EnvVar) {
	case "off", "0", "false":
		return // Default() stays nil: flight recording disabled process-wide
	}
	size := 0
	if v := os.Getenv(RingEnvVar); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			size = n
		} else {
			fmt.Fprintf(os.Stderr, "pochoir: ignoring %s=%q: want a positive integer\n", RingEnvVar, v)
		}
	}
	defaultRec.Store(New(size))
}

// Default returns the process-wide always-on recorder, or nil when disabled
// via POCHOIR_FLIGHT=off. A nil recorder is safe to use everywhere.
func Default() *Recorder { return defaultRec.Load() }

// SetDefaultRing replaces the default recorder with a fresh one of the given
// per-lane ring capacity — the programmatic size knob. It returns the new
// recorder. Events recorded into the previous default are discarded.
func SetDefaultRing(ringSize int) *Recorder {
	r := New(ringSize)
	defaultRec.Store(r)
	return r
}
