package flight

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestPackPairRoundTrip(t *testing.T) {
	cases := [][2]int{{0, 0}, {1, 2}, {-3, 7}, {1 << 20, -(1 << 20)}, {-1, -1}}
	for _, c := range cases {
		a, b := UnpackPair(PackPair(c[0], c[1]))
		if a != c[0] || b != c[1] {
			t.Errorf("PackPair(%d,%d) round-tripped to (%d,%d)", c[0], c[1], a, b)
		}
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Error("unknown kind name unmarshalled without error")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(EvBase, 1, 2, 3)
	r.Freeze()
	r.Unfreeze()
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
	if got := r.TotalRecorded(); got != 0 {
		t.Errorf("nil TotalRecorded = %d, want 0", got)
	}
	if got := r.Lanes(); got != 0 {
		t.Errorf("nil Lanes = %d, want 0", got)
	}
}

func TestRingWraparound(t *testing.T) {
	const ring = 16
	r := New(ring)
	// All appends from this goroutine land on one lane, so overfilling the
	// ring 4x must retain exactly the newest `ring` events of that lane.
	const total = 4 * ring
	for i := 0; i < total; i++ {
		r.Record(EvBase, int64(i), 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != ring {
		t.Fatalf("after %d appends into a %d-slot ring: %d events, want %d", total, ring, len(evs), ring)
	}
	for i, ev := range evs {
		want := int64(total - ring + i)
		if ev.A0 != want {
			t.Errorf("event %d: A0 = %d, want %d (oldest survivors must be the newest appends)", i, ev.A0, want)
		}
		if ev.Seq != uint64(want) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if got := r.TotalRecorded(); got != total {
		t.Errorf("TotalRecorded = %d, want %d", got, total)
	}
}

func TestRingSizeRoundsToPowerOfTwo(t *testing.T) {
	r := New(100)
	if n := len(r.shards[0].ring); n != 128 {
		t.Errorf("ring size for New(100) = %d, want 128", n)
	}
	r = New(0)
	if n := len(r.shards[0].ring); n != DefaultRing {
		t.Errorf("ring size for New(0) = %d, want %d", n, DefaultRing)
	}
}

func TestFreezeStopsRecording(t *testing.T) {
	r := New(64)
	r.Record(EvRunStart, 0, 0, 8)
	r.Freeze()
	r.Record(EvBase, 1, 2, 3)
	if evs := r.Snapshot(); len(evs) != 1 {
		t.Fatalf("frozen recorder accepted an append: %d events, want 1", len(evs))
	}
	r.Unfreeze()
	r.Record(EvBase, 1, 2, 3)
	if evs := r.Snapshot(); len(evs) != 2 {
		t.Fatalf("unfrozen recorder dropped an append: %d events, want 2", len(evs))
	}
}

// TestConcurrentRecordWhileDump hammers Record from many goroutines while
// snapshotting continuously. Under -race this exercises the per-slot seqlock:
// every event a snapshot returns must be internally consistent (A0 == A1, a
// writer invariant below), proving torn slots are dropped rather than
// surfaced.
func TestConcurrentRecordWhileDump(t *testing.T) {
	r := New(32) // small ring so writers lap readers constantly
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := int64(w)<<32 | int64(i&0xffff)
				r.Record(EvBase, v, v, v)
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	dumps := 0
	for time.Now().Before(deadline) {
		for _, ev := range r.Snapshot() {
			if ev.A0 != ev.A1 || ev.A1 != ev.A2 {
				t.Errorf("torn event surfaced: A0=%d A1=%d A2=%d", ev.A0, ev.A1, ev.A2)
			}
		}
		dumps++
	}
	close(stop)
	wg.Wait()
	if dumps == 0 {
		t.Fatal("no snapshots completed")
	}
	if r.TotalRecorded() == 0 {
		t.Fatal("no events recorded")
	}
}

func TestSnapshotOrdering(t *testing.T) {
	r := New(256)
	for i := 0; i < 500; i++ {
		r.Record(EvCut, CutTime, int64(i), 0)
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.TS > b.TS {
			t.Fatalf("events out of time order at %d: %d > %d", i, a.TS, b.TS)
		}
		if a.TS == b.TS && a.Worker == b.Worker && a.Seq >= b.Seq {
			t.Fatalf("lane order violated at %d: seq %d then %d", i, a.Seq, b.Seq)
		}
	}
}

func TestWindow(t *testing.T) {
	r := New(64)
	r.Record(EvRunStart, 0, 0, 4)
	evs := r.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if w := r.Window(time.Second); len(w) != 1 {
		t.Errorf("Window(1s) = %d events, want 1", len(w))
	}
	if w := r.Window(0); len(w) != 1 {
		t.Errorf("Window(0) = %d events, want all (1)", len(w))
	}
}

func TestDescribeCoversKinds(t *testing.T) {
	evs := []Event{
		{Kind: EvRunStart, A0: 1, A1: 2, A2: 10},
		{Kind: EvRunEnd, A0: 0},
		{Kind: EvRunEnd, A0: 1},
		{Kind: EvRunEnd, A0: 2},
		{Kind: EvCut, A0: CutHyper, A1: 2, A2: 9},
		{Kind: EvCut, A0: CutSpace, A1: 1},
		{Kind: EvCut, A0: CutCircle, A1: 0},
		{Kind: EvCut, A0: CutTime, A1: 7},
		{Kind: EvBase, A0: PackPair(2, 4), A1: PackPair(0, 32), A2: 64<<1 | 1},
		{Kind: EvPanic, A0: PackPair(2, 4), A1: PackPair(0, 32), A2: PanicBase},
		{Kind: EvPanic, A2: PanicSched},
		{Kind: EvCancel},
		{Kind: EvSup, A0: 2, A1: 3, A2: 1},
		{Kind: EvSup, A0: 99},
		{Kind: EvFault, A0: 1, A1: 5},
		{Kind: numKinds}, // unknown falls back to raw args
	}
	for _, ev := range evs {
		if s := ev.Describe(); s == "" {
			t.Errorf("Describe(%+v) empty", ev)
		}
	}
}

func TestSetDefaultRing(t *testing.T) {
	old := Default()
	defer defaultRec.Store(old)
	r := SetDefaultRing(64)
	if Default() != r {
		t.Fatal("SetDefaultRing did not install the new recorder")
	}
	if n := len(r.shards[0].ring); n != 64 {
		t.Errorf("ring size = %d, want 64", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := New(DefaultRing)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(EvBase, 1, 2, 3)
		}
	})
}
