# Developer targets. `make verify` is the pre-merge gate: build, vet, the
# full test suite, and a race-detector pass over the concurrency-bearing
# packages (the parallel engine, the scheduler, and the sharded telemetry
# recorder).

GO ?= go

.PHONY: build vet test race bench verify fuzz-smoke soak crash-soak monitor-smoke bench-lab flight-smoke gateway-smoke trace-smoke profile-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target exercises the packages that share memory across
# goroutines; the telemetry recorder's shard free list and snapshotting in
# particular must stay race-clean. The root-package run replays the
# hardened-execution suite (panic isolation, cancellation, poisoning,
# checkpoint/restore, fault injection) and the supervised-resilience suite
# (segment retries, degradation ladder, shadow verification) under the
# detector.
race:
	$(GO) test -race ./internal/core ./internal/sched ./internal/telemetry ./internal/loops ./internal/faultpoint ./internal/resilience ./internal/metrics ./internal/flight ./internal/wire ./internal/compiler ./internal/gateway ./internal/trace ./internal/profile
	$(GO) test -race -run 'Panic|Cancel|Poison|Checkpoint|Restore|Fault|RegisterArray|Supervised|LoopsEngine|Monitor|Progress|Bundle|Recorder|Incident|Resume|Durable' .

# soak runs the supervised-run soak with probabilistic faults armed at the
# walker's base and cut sites: every visit rolls the dice, and the
# supervisor must still converge to the bit-exact result. CI runs both
# specs on every push.
soak:
	POCHOIR_FAULTPOINTS='walker/base=p:0.01' $(GO) test -race -count 3 -run TestSupervisedSoakEnvFaults -v .
	POCHOIR_FAULTPOINTS='walker/cut=p:0.02' $(GO) test -race -count 3 -run TestSupervisedSoakEnvFaults -v .

# fuzz-smoke gives each fuzz target a short budget; CI runs them on every
# push, and `go test` alone still replays the seed corpora. FuzzWireDecode
# feeds arbitrary bytes to the durable-checkpoint decoder, which must error —
# never panic, and never allocate beyond the input's actual size.
# FuzzProfileDecode does the same for the hand-rolled gzip+protobuf pprof
# decoder behind /profilez.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDSL -fuzztime=30s -run '^FuzzDSL$$' ./internal/compiler
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=30s -run '^FuzzWireDecode$$' ./internal/wire
	$(GO) test -fuzz=FuzzProfileDecode -fuzztime=30s -run '^FuzzProfileDecode$$' ./internal/profile

# crash-soak hammers the durable-checkpoint crash path end to end: each
# iteration re-execs the test binary as a child running a spilling supervised
# run, SIGKILLs it at a random point of its journal progress, resumes from
# the journal in the parent process, and requires the final grid to be
# bit-identical to an uninterrupted run — all under the race detector.
# Journals are kept in ./crash-soak-out on failure so CI can upload them.
crash-soak:
	rm -rf crash-soak-out && mkdir -p crash-soak-out
	POCHOIR_CRASH_SOAK_DIR=$(CURDIR)/crash-soak-out \
		$(GO) test -race -count 8 -run '^TestCrashRecoveryKillHarness$$' -v .

# bench checks the telemetry acceptance criterion: Heat2D/NoTelemetry
# (nil-recorder fast path) must match seed throughput, and Heat2D/Telemetry
# reports the decomposition counters.
bench:
	$(GO) test -run '^$$' -bench Heat2D -benchtime 10x .

# monitor-smoke runs the self-scraping monitoring experiment: a supervised
# run scraped twice over HTTP from its own embedded monitor server, every
# exposition validated line-by-line, the zoid counter checked strictly
# increasing, and the progress estimator checked to finish at 100%. The
# experiment exits nonzero on any violation.
monitor-smoke:
	$(GO) run ./cmd/experiments -run monitor -quick

# bench-lab runs the performance observatory: the paper suite across the
# TRAP/STRAP/LOOPS engines with wall clock, telemetry, work/span, and
# cache-sim signals fused into BENCH_pochoir.json, then gates the report
# against the committed baseline in warn-only mode (shared CI runners are
# too noisy for a hard gate; the thresholds only hard-fail locally via
# `benchlab diff`/`benchlab check` without -informational).
bench-lab:
	$(GO) run ./cmd/benchlab run -profile quick -out BENCH_pochoir.json
	$(GO) run ./cmd/benchlab check -informational -baseline BENCH_baseline.json BENCH_pochoir.json

# flight-smoke is the black-box post-mortem smoke test: POCHOIR_FAULTPOINTS
# kills the run at its 121st base case — past 90% of the quick workload's
# 128 (the experiment calibrates the total with a clean run and fails if the
# armed count lands at <=90%, so a decomposition change that shifts the base
# count gets caught, not silently mis-tuned) — and the flight experiment
# asserts the crash bundle exists, parses, attributes the failing zoid, and
# holds the panic in its event window. cmd/blackbox must then list, render,
# diff, and trace-export the same bundle. Bundles land in ./flight-smoke-out
# so CI can upload them as artifacts.
flight-smoke:
	rm -rf flight-smoke-out && mkdir -p flight-smoke-out
	POCHOIR_POSTMORTEM_DIR=$(CURDIR)/flight-smoke-out \
		POCHOIR_FAULTPOINTS='walker/base=panic:after=120' \
		$(GO) run ./cmd/experiments -run flight -quick
	POCHOIR_POSTMORTEM_DIR=$(CURDIR)/flight-smoke-out $(GO) run ./cmd/blackbox list
	POCHOIR_POSTMORTEM_DIR=$(CURDIR)/flight-smoke-out $(GO) run ./cmd/blackbox show -tail 12
	POCHOIR_POSTMORTEM_DIR=$(CURDIR)/flight-smoke-out $(GO) run ./cmd/blackbox diff
	POCHOIR_POSTMORTEM_DIR=$(CURDIR)/flight-smoke-out $(GO) run ./cmd/blackbox trace -o flight-smoke-out/postmortem-trace.json

# gateway-smoke proves the serving gateway's overload/drain safety under the
# race detector, end to end over real HTTP: a burst past queue capacity must
# shed with 429 + Retry-After and lose zero accepted jobs; concurrent
# executions must never exceed the worker pool bound; an injected worker
# fault (POCHOIR_FAULTPOINTS grammar) must be absorbed by the supervisor
# with a bit-identical result; SIGTERM mid-burst (a real signal to a real
# re-exec'd daemon process) must drain every admitted job and exit 0; and
# the self-scraped /metrics exposition must stay parseable throughout.
gateway-smoke:
	$(GO) test -race -run 'TestGatewaySmoke|TestPochoird' -v ./internal/gateway

# trace-smoke is the causal-tracing acceptance test under the race detector,
# end to end over real HTTP: a faulted, retried, deadline-bounded job
# submitted with a caller W3C traceparent must yield one retrievable trace
# showing the admission decision, compile, queue wait, every segment attempt
# with its retry cause, and the spill/restore markers — surviving tail
# sampling through the slow-outlier rule with probabilistic keeps disabled;
# latency exemplars in /metrics must resolve to live /tracez entries; unknown
# trace IDs must 404; /statusz must link the incident's trace; and the SLO
# engine must report a fast-burn breach during a deadline-miss fault window
# and recover to healthy after it. The trace JSON and rendered waterfall land
# in ./trace-smoke-out so CI can upload them as artifacts.
trace-smoke:
	rm -rf trace-smoke-out && mkdir -p trace-smoke-out
	POCHOIR_TRACE_SMOKE_OUT=$(CURDIR)/trace-smoke-out \
		$(GO) test -race -run '^TestTraceSmoke$$' -v ./internal/gateway

# profile-smoke proves CPU attribution end to end under the race detector:
# two tenants share the daemon — one submitting heavy grids, one thrifty —
# and the scraped /profilez.json aggregate must attribute dominant CPU to
# the heavy tenant (≥4x the light one), carry priority/engine/job/phase
# label breakdowns, export pochoir_tenant_cpu_seconds_total on /metrics,
# and the hot-path sentinel must stay silent on a clean re-aggregation
# while flagging a synthetically injected kernel-share collapse. The JSON
# and ASCII renderings plus the sentinel findings land in
# ./profile-smoke-out so CI can upload them as artifacts.
profile-smoke:
	rm -rf profile-smoke-out && mkdir -p profile-smoke-out
	POCHOIR_PROFILE_SMOKE_OUT=$(CURDIR)/profile-smoke-out \
		$(GO) test -race -run '^TestProfileSmoke$$' -v ./internal/gateway

verify: build vet test race
