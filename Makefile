# Developer targets. `make verify` is the pre-merge gate: build, vet, the
# full test suite, and a race-detector pass over the concurrency-bearing
# packages (the parallel engine, the scheduler, and the sharded telemetry
# recorder).

GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target exercises the packages that share memory across
# goroutines; the telemetry recorder's shard free list and snapshotting in
# particular must stay race-clean.
race:
	$(GO) test -race ./internal/core ./internal/sched ./internal/telemetry

# bench checks the telemetry acceptance criterion: Heat2D/NoTelemetry
# (nil-recorder fast path) must match seed throughput, and Heat2D/Telemetry
# reports the decomposition counters.
bench:
	$(GO) test -run '^$$' -bench Heat2D -benchtime 10x .

verify: build vet test race
