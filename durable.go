package pochoir

import (
	"context"
	"fmt"
	"io"

	"pochoir/internal/flight"
	"pochoir/internal/grid"
	"pochoir/internal/metrics"
	"pochoir/internal/telemetry"
	"pochoir/internal/wire"
)

// CheckpointSchema identifies the durable checkpoint wire format
// ("pochoir-checkpoint/v1"): a schema-versioned, compact binary encoding of
// a Checkpoint — magic, version, resume cursor, grid geometry, and one typed
// data section per registered array, each independently CRC-32 protected.
// See internal/wire for the layout.
const CheckpointSchema = wire.Schema

// SpillEntry describes one entry of a durable spill journal; see
// ListSpillJournal.
type SpillEntry = wire.Entry

// EncodeCheckpoint writes cp to w in the versioned pochoir-checkpoint/v1
// wire format. The encoding streams through a fixed scratch buffer — it
// never materializes a second copy of the grid — and covers the header and
// every array section with independent CRC-32 checksums, so a later decode
// detects any corruption. Element types must be numeric (the fixed-width
// integers, int/uint, float32/float64); other element types have no durable
// encoding and are rejected.
func EncodeCheckpoint[T any](w io.Writer, cp *Checkpoint[T]) error {
	wcp, err := wireCheckpoint(cp)
	if err != nil {
		return err
	}
	return wire.Encode(w, wcp)
}

// DecodeCheckpoint reads one pochoir-checkpoint/v1 encoding from r and
// converts it back to a Checkpoint restorable into a stencil of element type
// T. Corrupt, truncated, or hostile input returns an error — never a panic —
// and allocation is bounded by the bytes actually present in the input.
func DecodeCheckpoint[T any](r io.Reader) (*Checkpoint[T], error) {
	wcp, err := wire.Decode(r)
	if err != nil {
		return nil, err
	}
	return checkpointFromWire[T](wcp)
}

// ListSpillJournal lists the entries of the spill journal in dir, oldest
// first — the checkpoints a supervised run with SpillDir has persisted so
// far. Entries are listed by name only; use DecodeCheckpoint (or
// cmd/blackbox checkpoints) to validate one.
func ListSpillJournal(dir string) ([]SpillEntry, error) {
	j, err := wire.OpenJournal(dir, 0)
	if err != nil {
		return nil, err
	}
	return j.Entries()
}

// wireCheckpoint converts a live checkpoint to its codec-level form. The
// array data is shared, not copied: wire.Encode only reads it, and
// checkpoints are immutable after capture.
func wireCheckpoint[T any](cp *Checkpoint[T]) (*wire.Checkpoint, error) {
	if cp == nil {
		return nil, fmt.Errorf("pochoir: encode of a nil checkpoint")
	}
	if len(cp.arrays) == 0 {
		return nil, fmt.Errorf("pochoir: checkpoint holds no arrays")
	}
	w := &wire.Checkpoint{StepsRun: cp.stepsRun, Sizes: cp.arrays[0].Sizes()}
	for i, a := range cp.arrays {
		data := a.Data()
		if _, _, ok := wire.KindOf(data); !ok {
			return nil, fmt.Errorf("pochoir: checkpoint array %d: element type %T has no durable encoding", i, data)
		}
		w.Arrays = append(w.Arrays, wire.Array{Slots: a.Slots(), Data: data})
	}
	return w, nil
}

// checkpointFromWire converts a decoded codec-level checkpoint back to a
// restorable Checkpoint[T], rejecting element-type mismatches (a float64
// journal does not restore into a float32 stencil).
func checkpointFromWire[T any](w *wire.Checkpoint) (*Checkpoint[T], error) {
	if w == nil {
		return nil, fmt.Errorf("pochoir: decode of a nil checkpoint")
	}
	cp := &Checkpoint[T]{stepsRun: w.StepsRun}
	for i, a := range w.Arrays {
		data, ok := a.Data.([]T)
		if !ok {
			var zero T
			return nil, fmt.Errorf("pochoir: checkpoint array %d holds %T elements, stencil element type is %T",
				i, a.Data, zero)
		}
		acp, err := grid.NewArrayCheckpoint(w.Sizes, a.Slots, data)
		if err != nil {
			return nil, fmt.Errorf("pochoir: checkpoint array %d: %w", i, err)
		}
		cp.arrays = append(cp.arrays, acp)
	}
	return cp, nil
}

// ResumeSupervised continues an interrupted supervised run from its durable
// spill journal — the cross-process half of SupervisePolicy.SpillDir. A
// fresh process reconstructs the stencil and its arrays (initial contents do
// not matter; the restore overwrites them), then calls ResumeSupervised with
// the same total step count and a policy naming the same SpillDir:
//
//   - the journal is walked newest-first and every entry's CRCs are
//     validated, skipping past any torn or corrupt tail to the newest entry
//     that checks out end to end;
//   - the stencil is restored to that checkpoint and only the remaining
//     totalSteps - checkpoint steps run under RunSupervised, with the same
//     retry ladder and the same journal receiving further spills;
//   - an empty (or fully corrupt) journal falls back to a cold start: the
//     full run from step zero, again under RunSupervised.
//
// Because a checkpoint captures every time slot of every array plus the
// resume cursor, and each point update is a pure function of older slots,
// the resumed run's final grid is bit-identical to an uninterrupted run's.
//
// The resume decision is observable everywhere the supervisor is: a
// SupResume telemetry event (Err records why a cold start happened), the
// pochoir_resume_total and pochoir_resume_corrupt_entries_total counters,
// and an EvSup flight-recorder stamp.
func (s *Stencil[T]) ResumeSupervised(ctx context.Context, totalSteps int, kern Kernel, p SupervisePolicy) (*RunReport, error) {
	if p.SpillDir == "" {
		return nil, fmt.Errorf("pochoir: ResumeSupervised needs SpillDir set")
	}
	if totalSteps < 0 {
		return nil, fmt.Errorf("pochoir: negative step count %d", totalSteps)
	}
	if len(s.arrays) == 0 {
		return nil, fmt.Errorf("pochoir: no arrays registered")
	}
	// Resolve the observability sinks exactly as RunSupervised will, so the
	// resume decision lands in the same places as the run it starts.
	rec := p.Telemetry
	if rec == nil {
		rec = s.opts.Telemetry
	}
	fr := p.Flight
	if fr == nil {
		fr = s.flightRecorder()
	}
	var sm *metrics.SupervisorMetrics
	if reg := p.Metrics; reg != nil {
		sm = metrics.NewSupervisorMetrics(reg)
	} else if reg := s.opts.Metrics; reg != nil {
		sm = metrics.NewSupervisorMetrics(reg)
	}
	emit := func(ev telemetry.SupEvent) {
		if rec != nil {
			rec.Supervisor(ev)
		}
		fr.Record(flight.EvSup, int64(ev.Kind), int64(ev.Segment), int64(ev.Attempt))
	}

	jour, err := wire.OpenJournal(p.SpillDir, p.SpillKeep)
	if err != nil {
		return nil, fmt.Errorf("pochoir: open spill journal: %w", err)
	}
	wcp, ent, skipped, err := jour.LoadLatest()
	if err != nil {
		return nil, fmt.Errorf("pochoir: read spill journal: %w", err)
	}
	if skipped > 0 && sm != nil {
		sm.ResumeCorrupt.Add(int64(skipped))
	}
	if wcp == nil {
		// Nothing durable to resume from: cold start.
		reason := "journal empty (cold start)"
		if skipped > 0 {
			reason = fmt.Sprintf("all %d journal entries corrupt (cold start)", skipped)
		}
		if sm != nil {
			sm.ResumeCold.Inc()
		}
		emit(telemetry.SupEvent{Kind: telemetry.SupResume, Err: reason})
		return s.RunSupervised(ctx, totalSteps, kern, p)
	}
	cp, err := checkpointFromWire[T](wcp)
	if err != nil {
		// The entry validates on the wire but does not fit this stencil:
		// that is a misconfiguration (wrong element type), not corruption.
		return nil, err
	}
	if cp.stepsRun > totalSteps {
		return nil, fmt.Errorf("pochoir: durable checkpoint %s is at step %d, past the requested total %d",
			ent.Path, cp.stepsRun, totalSteps)
	}
	if err := s.Restore(cp); err != nil {
		return nil, fmt.Errorf("pochoir: restore durable checkpoint %s: %w", ent.Path, err)
	}
	if sm != nil {
		sm.ResumeRestored.Inc()
	}
	emit(telemetry.SupEvent{Kind: telemetry.SupResume, Attempt: cp.stepsRun})
	return s.RunSupervised(ctx, totalSteps-cp.stepsRun, kern, p)
}
