package pochoir_test

// Telemetry invariant tests against the public API: whatever decomposition
// the engine picks (TRAP's hyperspace cuts, STRAP's one-dimension-at-a-time
// trisections, serial or parallel execution), the base cases it records
// must partition space-time exactly — total point updates == steps x grid
// volume — and the exported Chrome trace must be valid JSON with balanced,
// properly nested B/E span events on every worker track.

import (
	"bytes"
	"encoding/json"
	"testing"

	"pochoir"
	"pochoir/internal/stencils"
)

// telemetryConfigs covers TRAP vs STRAP crossed with serial vs parallel.
var telemetryConfigs = []struct {
	name string
	opts pochoir.Options
}{
	{"TRAP", pochoir.Options{}},
	{"TRAP/serial", pochoir.Options{Serial: true}},
	{"STRAP", pochoir.Options{Algorithm: 1}},
	{"STRAP/serial", pochoir.Options{Algorithm: 1, Serial: true}},
}

// TestTelemetryCoversSpaceTime: for every engine configuration, the sum of
// base-case zoid volumes equals steps x grid volume on both a floating
// point kernel (Heat 2p) and an integer one (Life 2p).
func TestTelemetryCoversSpaceTime(t *testing.T) {
	workloads := []struct {
		factory stencils.Factory
		sizes   []int
		steps   int
	}{
		{stencils.NewHeat2DFactory(true), []int{96, 96}, 24},
		{stencils.NewLifeFactory(), []int{64, 64}, 16},
	}
	for _, w := range workloads {
		for _, cfg := range telemetryConfigs {
			t.Run(w.factory.Name+"/"+cfg.name, func(t *testing.T) {
				rec := pochoir.NewRecorder()
				opts := cfg.opts
				opts.Telemetry = rec
				// Small cutoffs force deep recursion so every cut kind
				// actually fires on this grid size.
				opts.TimeCutoff, opts.SpaceCutoff, opts.Grain = 2, []int{16, 16}, 1
				w.factory.New(w.sizes, w.steps).Pochoir(opts).Run()

				st := rec.Snapshot()
				want := int64(w.sizes[0]) * int64(w.sizes[1]) * int64(w.steps)
				if st.BasePoints != want {
					t.Errorf("base-case point updates = %d, want steps x volume = %d", st.BasePoints, want)
				}
				if st.Bases == 0 || st.Zoids() < st.Bases {
					t.Errorf("implausible decomposition: %d bases of %d zoids", st.Bases, st.Zoids())
				}
				if cfg.opts.Serial && st.Spawns != 0 {
					t.Errorf("serial run spawned %d goroutines", st.Spawns)
				}
				if st.Events%2 != 0 {
					t.Errorf("odd event count %d: some span missing its End", st.Events)
				}
			})
		}
	}
}

// traceEvent is the subset of the Chrome trace-event schema the tests
// inspect.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	TS   float64 `json:"ts"`
	TID  int     `json:"tid"`
}

// TestTelemetryChromeTraceBalanced exports a real run and checks that the
// trace parses as JSON and every track's B/E events balance and nest.
func TestTelemetryChromeTraceBalanced(t *testing.T) {
	rec := pochoir.NewRecorder()
	f := stencils.NewHeat2DFactory(true)
	f.New([]int{96, 96}, 24).Pochoir(pochoir.Options{
		Telemetry: rec, TimeCutoff: 2, SpaceCutoff: []int{16, 16}, Grain: 1,
	}).Run()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	stacks := map[int][]string{}
	var begins, ends int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			begins++
			stacks[ev.TID] = append(stacks[ev.TID], ev.Name)
		case "E":
			ends++
			st := stacks[ev.TID]
			if len(st) == 0 {
				t.Fatalf("tid %d: E with empty stack", ev.TID)
			}
			stacks[ev.TID] = st[:len(st)-1]
		case "M":
			// metadata (process/thread names)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced trace: %d B vs %d E events", begins, ends)
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d: %d spans never ended: %v", tid, len(st), st)
		}
	}
}

// TestLastRunStatsDelta: on a resumed stencil, LastRunStats must describe
// only the most recent Run even though the recorder accumulates across
// runs.
func TestLastRunStatsDelta(t *testing.T) {
	const n = 48
	rec := pochoir.NewRecorder()
	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
	st := pochoir.NewWithOptions[float64](sh, pochoir.Options{Telemetry: rec})
	u := pochoir.MustArray[float64](sh.Depth(), n)
	u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	st.MustRegisterArray(u)
	kern := pochoir.K1(func(tt, i int) {
		u.Set(tt+1, 0.5*(u.Get(tt, i-1)+u.Get(tt, i+1)), i)
	})

	if err := st.Run(10, kern); err != nil {
		t.Fatal(err)
	}
	first := st.LastRunStats()
	if first == nil || first.BasePoints != int64(n)*10 {
		t.Fatalf("first run stats: %+v, want %d point updates", first, n*10)
	}
	if err := st.Run(6, kern); err != nil {
		t.Fatal(err)
	}
	second := st.LastRunStats()
	if second.BasePoints != int64(n)*6 {
		t.Fatalf("second run stats cover %d point updates, want only the resumed run's %d",
			second.BasePoints, n*6)
	}
	if total := rec.Snapshot().BasePoints; total != int64(n)*16 {
		t.Fatalf("recorder total %d, want cumulative %d", total, n*16)
	}
}

// TestLastRunStatsNilWithoutRecorder: no telemetry configured, no stats.
func TestLastRunStatsNilWithoutRecorder(t *testing.T) {
	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}})
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), 8)
	u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	st.MustRegisterArray(u)
	if err := st.Run(2, pochoir.K1(func(tt, i int) { u.Set(tt+1, u.Get(tt, i), i) })); err != nil {
		t.Fatal(err)
	}
	if st.LastRunStats() != nil {
		t.Fatal("LastRunStats must be nil when Options.Telemetry is unset")
	}
}
