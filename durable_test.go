package pochoir_test

// Durable-checkpoint suite: the versioned wire round trip at the stencil
// level, the spill journal driven by RunSupervised, cross-process resume via
// ResumeSupervised — including corrupt/torn journal tails and cold starts —
// and the subprocess kill-harness: a child process SIGKILLed at a random
// point of a spilling supervised run, resumed in this process, with the
// final grid required to be bit-identical to an uninterrupted run.

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"os/exec"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/metrics"
	"pochoir/internal/telemetry"
)

// spillHeat2D runs a supervised heat run with durable spilling into dir and
// returns the stencil's final grid.
func spillHeat2D(t *testing.T, dir string, X, Y, steps, segSteps int, seed int64) *pochoir.RunReport {
	t.Helper()
	st, _, kern := heatStencil(t, pochoir.Options{}, X, Y, seed)
	rep, err := st.RunSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		SegmentSteps: segSteps, SpillDir: dir, SpillKeep: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEncodeDecodeCheckpointRoundTrip(t *testing.T) {
	const X, Y, steps, seed = 24, 24, 10, 3
	want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)

	// Run halfway, checkpoint, push through the wire, and restore into a
	// brand-new stencil that finishes the run.
	st, _, kern := heatStencil(t, pochoir.Options{}, X, Y, seed)
	if err := st.Run(steps/2, kern); err != nil {
		t.Fatal(err)
	}
	cp, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pochoir.EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := pochoir.DecodeCheckpoint[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.StepsRun() != steps/2 {
		t.Fatalf("decoded checkpoint at step %d, want %d", cp2.StepsRun(), steps/2)
	}
	st2, u2, kern2 := heatStencil(t, pochoir.Options{}, X, Y, seed+1000) // different init: restore must overwrite it
	if err := st2.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	if err := st2.Run(steps-steps/2, kern2); err != nil {
		t.Fatal(err)
	}
	mustMatch(t, u2, steps, want)
}

func TestDecodeCheckpointWrongElementType(t *testing.T) {
	const X, Y, seed = 8, 8, 3
	st, _, _ := heatStencil(t, pochoir.Options{}, X, Y, seed)
	cp, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pochoir.EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := pochoir.DecodeCheckpoint[float32](&buf); err == nil {
		t.Fatal("decoding a float64 checkpoint as float32 succeeded; want element-type error")
	}
}

// TestResumeSupervisedContinuesInterruptedRun simulates the common crash
// shape without a subprocess: a spilling run is abandoned partway, and a
// fresh stencil resumes from the journal to the bit-exact final grid.
func TestResumeSupervisedContinuesInterruptedRun(t *testing.T) {
	const X, Y, steps, segSteps, seed = 32, 32, 12, 3, 11
	want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)
	dir := t.TempDir()

	// "Crash": run only the first 9 of 12 steps, then drop the stencil. The
	// journal's newest entry is the checkpoint before the last completed
	// segment (step 6).
	spillHeat2D(t, dir, X, Y, steps-segSteps, segSteps, seed)

	rec := pochoir.NewRecorder()
	reg := pochoir.NewMetrics()
	st, u, kern := heatStencil(t, pochoir.Options{}, X, Y, seed+1000) // fresh init: restore must overwrite it
	rep, err := st.ResumeSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		SegmentSteps: segSteps, SpillDir: dir, SpillKeep: 64,
		Telemetry: rec, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.StepsRun() != steps {
		t.Fatalf("resumed stencil at step %d, want %d", st.StepsRun(), steps)
	}
	mustMatch(t, u, steps, want)
	if rep.Spills == 0 {
		t.Fatal("resumed run recorded no spills of its own")
	}

	// The resume decision must be observable: a SupResume event with the
	// restored cursor, and the restored-outcome counter.
	var resume *pochoir.SupervisorEvent
	for _, ev := range rec.SupervisorEvents() {
		if ev.Kind == telemetry.SupResume {
			ev := ev
			resume = &ev
		}
	}
	if resume == nil {
		t.Fatal("no SupResume event recorded")
	}
	if resume.Err != "" {
		t.Fatalf("resume fell back to cold start: %s", resume.Err)
	}
	if resume.Attempt != steps-2*segSteps {
		t.Fatalf("resumed from step %d, want %d", resume.Attempt, steps-2*segSteps)
	}
	sm := metrics.NewSupervisorMetrics(reg)
	if got := sm.ResumeRestored.Value(); got != 1 {
		t.Fatalf("resume_restored = %d, want 1", got)
	}
	if got := sm.ResumeCorrupt.Value(); got != 0 {
		t.Fatalf("resume_corrupt_entries = %d, want 0", got)
	}
}

// TestResumeSupervisedSkipsCorruptTail damages the journal's newest entry —
// a flipped byte and a truncation, the two disk-corruption shapes the CRCs
// exist for — and requires resume to fall back to the newest good entry and
// still reproduce the uninterrupted run bit-for-bit.
func TestResumeSupervisedSkipsCorruptTail(t *testing.T) {
	const X, Y, steps, segSteps, seed = 32, 32, 12, 3, 13
	want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)

	damages := map[string]func(t *testing.T, path string){
		"flipped-byte": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/3); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range damages {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			spillHeat2D(t, dir, X, Y, steps-segSteps, segSteps, seed)
			ents, err := pochoir.ListSpillJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) < 2 {
				t.Fatalf("journal holds %d entries, need >= 2", len(ents))
			}
			newest := ents[len(ents)-1]
			damage(t, newest.Path)

			rec := pochoir.NewRecorder()
			reg := pochoir.NewMetrics()
			st, u, kern := heatStencil(t, pochoir.Options{}, X, Y, seed+1000)
			if _, err := st.ResumeSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
				SegmentSteps: segSteps, SpillDir: dir, SpillKeep: 64,
				Telemetry: rec, Metrics: reg,
			}); err != nil {
				t.Fatal(err)
			}
			mustMatch(t, u, steps, want)

			sm := metrics.NewSupervisorMetrics(reg)
			if got := sm.ResumeCorrupt.Value(); got != 1 {
				t.Fatalf("resume_corrupt_entries = %d, want 1", got)
			}
			for _, ev := range rec.SupervisorEvents() {
				if ev.Kind == telemetry.SupResume {
					if ev.Err != "" {
						t.Fatalf("resume fell back to cold start: %s", ev.Err)
					}
					if ev.Attempt != newest.Steps-segSteps {
						t.Fatalf("resumed from step %d, want the pre-tail entry %d", ev.Attempt, newest.Steps-segSteps)
					}
				}
			}
		})
	}
}

// TestResumeSupervisedColdStart covers the two journal states with nothing
// to restore: an empty journal and one whose every entry is corrupt. Both
// must fall back to a full run from step zero and still match.
func TestResumeSupervisedColdStart(t *testing.T) {
	const X, Y, steps, segSteps, seed = 24, 24, 8, 2, 17
	want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)

	prepare := map[string]func(t *testing.T, dir string) int{
		"empty-journal": func(t *testing.T, dir string) int { return 0 },
		"all-corrupt": func(t *testing.T, dir string) int {
			spillHeat2D(t, dir, X, Y, steps, segSteps, seed)
			ents, err := pochoir.ListSpillJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if err := os.Truncate(e.Path, 7); err != nil {
					t.Fatal(err)
				}
			}
			return len(ents)
		},
	}
	for name, prep := range prepare {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			corrupt := prep(t, dir)

			rec := pochoir.NewRecorder()
			reg := pochoir.NewMetrics()
			st, u, kern := heatStencil(t, pochoir.Options{}, X, Y, seed)
			if _, err := st.ResumeSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
				SegmentSteps: segSteps, SpillDir: dir, SpillKeep: 64,
				Telemetry: rec, Metrics: reg,
			}); err != nil {
				t.Fatal(err)
			}
			mustMatch(t, u, steps, want)

			var cold bool
			for _, ev := range rec.SupervisorEvents() {
				if ev.Kind == telemetry.SupResume && ev.Err != "" {
					cold = true
				}
			}
			if !cold {
				t.Fatal("no cold-start SupResume event recorded")
			}
			sm := metrics.NewSupervisorMetrics(reg)
			if got := sm.ResumeCold.Value(); got != 1 {
				t.Fatalf("resume cold_start = %d, want 1", got)
			}
			if got := sm.ResumeCorrupt.Value(); got != int64(corrupt) {
				t.Fatalf("resume_corrupt_entries = %d, want %d", got, corrupt)
			}
		})
	}
}

// Restore error paths: every rejection must happen before any array is
// mutated, so a failed Restore never leaves a half-restored stencil.
func TestRestoreErrorPaths(t *testing.T) {
	const X, Y, seed = 8, 8, 5

	snapshot := func(u *pochoir.Array[float64], tt int) []float64 {
		out := make([]float64, X*Y)
		if err := u.CopyOut(tt, out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	t.Run("nil-checkpoint", func(t *testing.T) {
		st, _, _ := heatStencil(t, pochoir.Options{}, X, Y, seed)
		if err := st.Restore(nil); err == nil {
			t.Fatal("Restore(nil) succeeded")
		}
	})

	t.Run("array-count-mismatch-after-reregistration", func(t *testing.T) {
		st, u, _ := heatStencil(t, pochoir.Options{}, X, Y, seed)
		cp, err := st.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		// A second array registered after the checkpoint: the checkpoint no
		// longer describes the stencil's full state.
		v := pochoir.MustArray[float64](st.Shape().Depth(), X, Y)
		v.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
		st.MustRegisterArray(v)
		before := snapshot(u, 0)
		if err := st.Restore(cp); err == nil {
			t.Fatal("Restore with mismatched array count succeeded")
		}
		after := snapshot(u, 0)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("failed Restore mutated array state at %d", i)
			}
		}
	})

	t.Run("shape-mismatch", func(t *testing.T) {
		st, _, _ := heatStencil(t, pochoir.Options{}, X, Y, seed)
		cp, err := st.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		st2, u2, _ := heatStencil(t, pochoir.Options{}, X*2, Y, seed)
		before := snapshot2(t, u2, 0, X*2*Y)
		if err := st2.Restore(cp); err == nil {
			t.Fatal("Restore of a checkpoint with different extents succeeded")
		}
		after := snapshot2(t, u2, 0, X*2*Y)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("failed Restore mutated array state at %d", i)
			}
		}
	})

	t.Run("restore-after-reset", func(t *testing.T) {
		const steps = 6
		want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)
		st, u, kern := heatStencil(t, pochoir.Options{}, X, Y, seed)
		if err := st.Run(steps/2, kern); err != nil {
			t.Fatal(err)
		}
		cp, err := st.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		// Reset rewinds the cursor to zero; Restore must re-establish both
		// the arrays and the cursor so the run completes exactly.
		st.Reset()
		if err := st.Restore(cp); err != nil {
			t.Fatalf("Restore after Reset: %v", err)
		}
		if st.StepsRun() != steps/2 {
			t.Fatalf("cursor at %d after Restore, want %d", st.StepsRun(), steps/2)
		}
		if err := st.Run(steps-steps/2, kern); err != nil {
			t.Fatal(err)
		}
		mustMatch(t, u, steps, want)
	})
}

func snapshot2(t *testing.T, u *pochoir.Array[float64], tt, n int) []float64 {
	t.Helper()
	out := make([]float64, n)
	if err := u.CopyOut(tt, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// Kill-harness geometry, shared by the parent and the re-exec'd child.
const (
	crashX, crashY  = 32, 32
	crashSteps      = 32
	crashSegSteps   = 2
	crashSeed       = 99
	crashChildEnv   = "POCHOIR_CRASH_CHILD_DIR"
	crashChildMatch = "^TestCrashHarnessChild$"
)

// TestCrashHarnessChild is the kill-harness victim: it only runs when the
// harness re-execs the test binary with the journal directory in the
// environment, and it executes a spilling supervised run paced so the parent
// can SIGKILL it at a chosen point of its progress.
func TestCrashHarnessChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("kill-harness child; run via TestCrashRecoveryKillHarness")
	}
	st, u, _ := heatStencil(t, pochoir.Options{}, crashX, crashY, crashSeed)
	kern := pochoir.K2(func(tt, x, y int) {
		if x == 0 && y == 0 {
			// Pace the run (~2ms per time step at one corner point) so the
			// parent's poll loop can land a SIGKILL mid-flight. Sleeping
			// changes no arithmetic: the result stays bit-identical.
			time.Sleep(2 * time.Millisecond)
		}
		c := u.Get(tt, x, y)
		u.Set(tt+1, c+
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y))+
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1)), x, y)
	})
	if _, err := st.RunSupervised(context.Background(), crashSteps, kern, pochoir.SupervisePolicy{
		SegmentSteps: crashSegSteps, SpillDir: dir, SpillKeep: 64,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryKillHarness re-execs this test binary as a child running
// a spilling supervised run, SIGKILLs it once the journal shows progress
// past a randomly chosen step, then resumes from the journal in this process
// and requires the final grid to be bit-identical to an uninterrupted run —
// the end-to-end crash-recovery guarantee. A child that finishes before the
// kill lands is fine: resume then recomputes from the newest checkpoint and
// the assertion is unchanged.
func TestCrashRecoveryKillHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness skipped in -short")
	}
	want := unfaultedHeat2D(t, pochoir.Options{}, crashX, crashY, crashSteps, crashSeed)
	dir := t.TempDir()
	if base := os.Getenv("POCHOIR_CRASH_SOAK_DIR"); base != "" {
		// Under `make crash-soak` the journal lives outside t.TempDir and is
		// kept when the iteration fails, so CI can upload it as an artifact.
		var err error
		if dir, err = os.MkdirTemp(base, "journal-"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if !t.Failed() {
				os.RemoveAll(dir)
			}
		})
	}

	// Kill once the journal's newest entry reaches a random segment
	// boundary in [1, segments-1).
	segments := crashSteps / crashSegSteps
	targetStep := crashSegSteps * (1 + rand.Intn(segments-1))

	cmd := exec.Command(os.Args[0], "-test.run="+crashChildMatch, "-test.v")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"="+dir,
		"POCHOIR_POSTMORTEM_DIR=off",
	)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	killed := false
	deadline := time.After(120 * time.Second)
	poll := time.NewTicker(time.Millisecond)
	defer poll.Stop()
wait:
	for {
		select {
		case err := <-done:
			// Child finished before the kill landed; it must have succeeded.
			if err != nil {
				t.Fatalf("child failed: %v\n%s", err, out.String())
			}
			break wait
		case <-deadline:
			_ = cmd.Process.Kill()
			<-done
			t.Fatalf("child never reached step %d; output:\n%s", targetStep, out.String())
		case <-poll.C:
			ents, err := pochoir.ListSpillJournal(dir)
			if err != nil || len(ents) == 0 {
				continue
			}
			if ents[len(ents)-1].Steps >= targetStep {
				_ = cmd.Process.Kill() // SIGKILL: no deferred cleanup, no atexit
				<-done
				killed = true
				break wait
			}
		}
	}
	t.Logf("kill harness: killed=%v targetStep=%d", killed, targetStep)

	ents, err := pochoir.ListSpillJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("child left no journal entries")
	}

	// The "fresh process": this one. A brand-new stencil with its own
	// (different) initial state resumes from the child's journal.
	st, u, kern := heatStencil(t, pochoir.Options{}, crashX, crashY, crashSeed)
	rep, err := st.ResumeSupervised(context.Background(), crashSteps, kern, pochoir.SupervisePolicy{
		SegmentSteps: crashSegSteps, SpillDir: dir, SpillKeep: 64,
	})
	if err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	if st.StepsRun() != crashSteps {
		t.Fatalf("resumed stencil at step %d, want %d", st.StepsRun(), crashSteps)
	}
	if rep.StepsDone > crashSteps {
		t.Fatalf("resumed run reports %d steps done, more than the %d requested", rep.StepsDone, crashSteps)
	}
	mustMatch(t, u, crashSteps, want)
}
