package pochoir_test

import (
	"testing"

	"pochoir"
)

// refHeat1D advances a 1D heat grid independently of the engine.
func refHeat1D(init []float64, n, steps int, periodic bool) []float64 {
	cur := append([]float64(nil), init...)
	next := make([]float64, n)
	at := func(g []float64, i int) float64 {
		if periodic {
			return g[((i%n)+n)%n]
		}
		if i < 0 || i >= n {
			return 0
		}
		return g[i]
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			next[i] = 0.25 * (at(cur, i-1) + 2*cur[i] + at(cur, i+1))
		}
		cur, next = next, cur
	}
	return cur
}

func run1D(t *testing.T, n, steps int, periodic bool, opts pochoir.Options, specialized bool) []float64 {
	t.Helper()
	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
	st := pochoir.NewWithOptions[float64](sh, opts)
	u := pochoir.MustArray[float64](sh.Depth(), n)
	if periodic {
		u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	} else {
		u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	}
	st.MustRegisterArray(u)
	init := randomGrid(n, 77)
	if err := u.CopyIn(0, init); err != nil {
		t.Fatal(err)
	}
	kern := pochoir.K1(func(tt, i int) {
		u.Set(tt+1, 0.25*(u.Get(tt, i-1)+2*u.Get(tt, i)+u.Get(tt, i+1)), i)
	})
	if specialized {
		// Hand interior clone in split-pointer style.
		interior := func(z pochoir.Zoid) {
			lo, hi := z.Lo[0], z.Hi[0]
			for tt := z.T0; tt < z.T1; tt++ {
				w, r := u.Slot(tt), u.Slot(tt-1)
				dst := w[lo:hi]
				cm, c, cp := r[lo-1:], r[lo:], r[lo+1:]
				for i := range dst {
					dst[i] = 0.25 * (cm[i] + 2*c[i] + cp[i])
				}
				lo += z.DLo[0]
				hi += z.DHi[0]
			}
		}
		if err := st.RunSpecialized(steps, pochoir.BaseKernels{
			Interior: interior,
			Boundary: st.GenericBase(kern),
		}); err != nil {
			t.Fatal(err)
		}
	} else if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	if err := u.CopyOut(steps, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOptionMatrix1D sweeps the full option space on a 1D stencil against
// the independent reference.
func TestOptionMatrix1D(t *testing.T) {
	n, steps := 301, 170
	for _, periodic := range []bool{false, true} {
		want := refHeat1D(randomGrid(n, 77), n, steps, periodic)
		for _, specialized := range []bool{false, true} {
			for _, opts := range []pochoir.Options{
				{},
				{Serial: true},
				{Algorithm: 1},
				{Algorithm: 1, Serial: true},
				{TimeCutoff: 1, SpaceCutoff: []int{1}},
				{TimeCutoff: 7, SpaceCutoff: []int{13}, Grain: 1},
				{NoUnifiedPeriodic: !periodic}, // box decomposition (nonperiodic only)
			} {
				if opts.NoUnifiedPeriodic && periodic {
					continue
				}
				got := run1D(t, n, steps, periodic, opts, specialized)
				if d := maxAbsDiff(got, want); d > 1e-12 {
					t.Fatalf("periodic=%v specialized=%v opts=%+v: diff %g",
						periodic, specialized, opts, d)
				}
			}
		}
	}
}

// TestOptionsValidation: newWalker must reject malformed execution options
// instead of silently misbehaving (a short SpaceCutoff used to leave the
// trailing cutoffs at 0, changing coarsening for those dimensions).
func TestOptionsValidation(t *testing.T) {
	mk := func(opts pochoir.Options) error {
		sh := pochoir.MustShape(2, [][]int{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1}})
		st := pochoir.NewWithOptions[float64](sh, opts)
		u := pochoir.MustArray[float64](sh.Depth(), 16, 16)
		u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
		st.MustRegisterArray(u)
		return st.Run(2, pochoir.K2(func(tt, x, y int) { u.Set(tt+1, u.Get(tt, x, y), x, y) }))
	}
	bad := []pochoir.Options{
		{TimeCutoff: -1},
		{Grain: -5},
		{SpaceCutoff: []int{8}},       // too short for a 2D stencil
		{SpaceCutoff: []int{8, 8, 8}}, // too long
		{SpaceCutoff: []int{8, -2}},   // negative entry
	}
	for _, opts := range bad {
		if err := mk(opts); err == nil {
			t.Errorf("opts %+v: want validation error, got nil", opts)
		}
	}
	good := []pochoir.Options{
		{},
		{TimeCutoff: 3, SpaceCutoff: []int{8, 8}, Grain: 1},
		{SpaceCutoff: []int{0, 0}}, // zero entries mean uncoarsened, and are valid
	}
	for _, opts := range good {
		if err := mk(opts); err != nil {
			t.Errorf("opts %+v: unexpected error %v", opts, err)
		}
	}
}

// TestGenericBaseAsBoundaryOnly: RunSpecialized with only a boundary clone
// must still be correct (the modular-indexing ablation configuration).
func TestGenericBaseAsBoundaryOnly(t *testing.T) {
	n, steps := 200, 60
	want := refHeat1D(randomGrid(n, 77), n, steps, true)
	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), n)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	if err := u.CopyIn(0, randomGrid(n, 77)); err != nil {
		t.Fatal(err)
	}
	kern := pochoir.K1(func(tt, i int) {
		u.Set(tt+1, 0.25*(u.Get(tt, i-1)+2*u.Get(tt, i)+u.Get(tt, i+1)), i)
	})
	if err := st.RunSpecialized(steps, pochoir.BaseKernels{Boundary: st.GenericBase(kern)}); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	if err := u.CopyOut(steps, got); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("boundary-only run differs by %g", d)
	}
}

func TestRunSpecializedRequiresBoundary(t *testing.T) {
	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}})
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), 8)
	st.MustRegisterArray(u)
	if err := st.RunSpecialized(1, pochoir.BaseKernels{}); err == nil {
		t.Fatal("missing boundary clone must be rejected")
	}
}

// TestKernelAdapters verifies K1..K4 argument plumbing.
func TestKernelAdapters(t *testing.T) {
	var got []int
	pochoir.K1(func(t, x int) { got = []int{t, x} })(9, []int{1})
	if got[0] != 9 || got[1] != 1 {
		t.Fatal("K1")
	}
	pochoir.K2(func(t, x, y int) { got = []int{t, x, y} })(9, []int{1, 2})
	if got[2] != 2 {
		t.Fatal("K2")
	}
	pochoir.K3(func(t, x, y, z int) { got = []int{t, x, y, z} })(9, []int{1, 2, 3})
	if got[3] != 3 {
		t.Fatal("K3")
	}
	pochoir.K4(func(t, x, y, z, w int) { got = []int{t, x, y, z, w} })(9, []int{1, 2, 3, 4})
	if got[4] != 4 {
		t.Fatal("K4")
	}
}

// TestBoundaryHelpers verifies each stock boundary function's values.
func TestBoundaryHelpers(t *testing.T) {
	u := pochoir.MustArray[float64](1, 4)
	for i := 0; i < 4; i++ {
		u.Set(0, float64(i+1), i)
	}
	if v := pochoir.PeriodicBoundary[float64]()(u, 0, []int{-1}); v != 4 {
		t.Fatalf("periodic: %v", v)
	}
	if v := pochoir.NeumannBoundary[float64]()(u, 0, []int{9}); v != 4 {
		t.Fatalf("neumann: %v", v)
	}
	if v := pochoir.ConstBoundary(2.5)(u, 0, []int{-1}); v != 2.5 {
		t.Fatalf("const: %v", v)
	}
	if v := pochoir.ZeroBoundary[float64]()(u, 0, []int{-1}); v != 0 {
		t.Fatalf("zero: %v", v)
	}
	d := pochoir.DirichletBoundary(func(tt int, idx []int) float64 { return float64(tt) + float64(idx[0]) })
	if v := d(u, 3, []int{-2}); v != 1 {
		t.Fatalf("dirichlet: %v", v)
	}
}

// TestStencilMetadata covers the remaining accessors.
func TestStencilMetadata(t *testing.T) {
	sh := pochoir.MustShape(2, [][]int{{1, 0, 0}, {0, 0, 0}})
	st := pochoir.New[float64](sh)
	if st.Shape() != sh {
		t.Fatal("Shape accessor")
	}
	a := pochoir.MustArray[float64](1, 4, 6)
	st.MustRegisterArray(a)
	if len(st.Arrays()) != 1 {
		t.Fatal("Arrays accessor")
	}
	if s := st.Sizes(); s[0] != 4 || s[1] != 6 {
		t.Fatal("Sizes accessor")
	}
	st.Reset()
	if st.StepsRun() != 0 {
		t.Fatal("Reset")
	}
}
